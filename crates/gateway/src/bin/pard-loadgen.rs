//! Load generator for the PARD gateway.
//!
//! ```sh
//! # Open loop: replay a synthesised trace at ~120 req/s for 10 s.
//! pard-loadgen --addr 127.0.0.1:7311 --app tm --mode open --rate 120 --duration 10
//!
//! # Open loop over a paper trace shape (wiki / tweet / azure).
//! pard-loadgen --addr 127.0.0.1:7311 --app tm --mode open --trace tweet --duration 30
//!
//! # Closed loop: 8 connections, 100 requests each, back to back.
//! pard-loadgen --addr 127.0.0.1:7311 --app tm --mode closed --requests 100 --connections 8
//! ```
//!
//! Prints a human summary plus one `BENCH_*.json`-style record; `--out
//! FILE` also writes the record to disk.

use std::io::Write;
use std::net::{SocketAddr, ToSocketAddrs};

use pard_gateway::{LoadMode, LoadgenConfig, Pace};
use pard_workload::{constant, PayloadSpec, TraceKind};

fn usage() -> ! {
    eprintln!(
        "usage: pard-loadgen --addr HOST:PORT [--app NAME] [--mode open|closed]\n\
         \x20                   [--rate RPS] [--duration SECS] [--trace wiki|tweet|azure]\n\
         \x20                   [--requests N] [--connections N] [--slo-ms MS]\n\
         \x20                   [--tight-frac F] [--scale F] [--pace wall|virtual]\n\
         \x20                   [--seed N] [--mux] [--out FILE]\n\
         \x20      pard-loadgen --bench quick|full [--label NAME] [--out FILE]\n\
         \x20                   [--check BENCH_gateway.json]\n\
         \n\
         --app accepts a comma-separated list; connections round-robin\n\
         across the entries (multi-tenant gateways).\n\
         \n\
         --pace virtual stamps each open-loop request with its scheduled\n\
         virtual arrival (at_us) and sends at full speed: against a sim\n\
         backend the replay is deterministic and runs at simulation speed.\n\
         With several connections the run declares a replay group and the\n\
         gateway re-serializes the parties into global schedule order.\n\
         \n\
         --mux multiplexes every open-loop connection onto one epoll\n\
         thread (wall pacing) — the C10K discipline; use it for\n\
         --connections counts in the thousands.\n\
         \n\
         --bench runs the self-contained loopback benchmark matrix (boots\n\
         its own gateways; no --addr). --check compares throughput per case\n\
         against the newest run in the given trajectory file and exits 1 on\n\
         gross (<0.5x) regression. --out appends the run to the trajectory\n\
         file (creating it if missing)."
    );
    std::process::exit(2);
}

/// `--bench` entry point: run the matrix, optionally check against and
/// append to a trajectory file.
fn run_bench(effort: &str, label: &str, out: Option<&str>, check: Option<&str>) -> ! {
    use pard_gateway::bench::{self, Effort, Trajectory};
    let effort = match effort {
        "quick" => Effort::Quick,
        "full" => Effort::Full,
        other => {
            eprintln!("unknown bench effort {other:?} (quick, full)");
            usage()
        }
    };
    let run = match bench::run_matrix(label, effort) {
        Ok(run) => run,
        Err(e) => {
            eprintln!("bench matrix failed: {e}");
            std::process::exit(1);
        }
    };
    print!("{}", run.render());
    let mut failed = false;
    if let Some(path) = check {
        let baseline = std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|text| Trajectory::from_json(&text));
        match baseline {
            Ok(trajectory) => match trajectory.latest() {
                Some(latest) => {
                    let violations = bench::check_against(latest, &run);
                    if violations.is_empty() {
                        println!(
                            "check vs {path} ({}): all {} cases within bounds",
                            latest.label,
                            latest.rows.len()
                        );
                    } else {
                        for v in &violations {
                            eprintln!("REGRESSION {v}");
                        }
                        failed = true;
                    }
                }
                None => eprintln!("trajectory {path} has no runs; nothing to check"),
            },
            Err(e) => {
                eprintln!("cannot check against {path}: {e}");
                failed = true;
            }
        }
    }
    if let Some(path) = out {
        let mut trajectory = match std::fs::read_to_string(path) {
            Ok(text) => match Trajectory::from_json(&text) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("cannot append to {path}: {e}");
                    std::process::exit(1);
                }
            },
            Err(_) => Trajectory::default(),
        };
        trajectory.runs.push(run);
        match std::fs::write(path, trajectory.to_json() + "\n") {
            Ok(()) => println!("wrote {path}"),
            Err(e) => {
                eprintln!("could not write {path}: {e}");
                failed = true;
            }
        }
    }
    std::process::exit(if failed { 1 } else { 0 });
}

fn main() {
    let mut addr: Option<String> = None;
    let mut config = LoadgenConfig::default();
    let mut mode = "open".to_string();
    let mut rate = 100.0f64;
    let mut duration_s = 10usize;
    let mut trace_kind: Option<TraceKind> = None;
    let mut requests = 100usize;
    let mut out_path: Option<String> = None;
    let mut bench: Option<String> = None;
    let mut label = "run".to_string();
    let mut check: Option<String> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].clone();
        let mut value = || -> String {
            i += 1;
            args.get(i)
                .unwrap_or_else(|| {
                    eprintln!("missing value for {flag}");
                    usage()
                })
                .clone()
        };
        match flag.as_str() {
            "--addr" => addr = Some(value()),
            "--app" => config.app = value(),
            "--mode" => mode = value(),
            "--rate" => rate = value().parse().unwrap_or_else(|_| usage()),
            "--duration" => duration_s = value().parse().unwrap_or_else(|_| usage()),
            "--trace" => {
                trace_kind = Some(match value().as_str() {
                    "wiki" => TraceKind::Wiki,
                    "tweet" => TraceKind::Tweet,
                    "azure" => TraceKind::Azure,
                    other => {
                        eprintln!("unknown trace {other:?}");
                        usage()
                    }
                })
            }
            "--requests" => requests = value().parse().unwrap_or_else(|_| usage()),
            "--connections" => config.connections = value().parse().unwrap_or_else(|_| usage()),
            "--slo-ms" => config.slo_ms = Some(value().parse().unwrap_or_else(|_| usage())),
            "--tight-frac" => config.tight_fraction = value().parse().unwrap_or_else(|_| usage()),
            "--scale" => config.time_scale = value().parse().unwrap_or_else(|_| usage()),
            "--pace" => {
                config.pace = match value().as_str() {
                    "wall" => Pace::Wall,
                    "virtual" => Pace::Virtual,
                    other => {
                        eprintln!("unknown pace {other:?}");
                        usage()
                    }
                }
            }
            "--seed" => config.seed = value().parse().unwrap_or_else(|_| usage()),
            "--mux" => config.mux = true,
            "--out" => out_path = Some(value()),
            "--bench" => bench = Some(value()),
            "--label" => label = value(),
            "--check" => check = Some(value()),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
        i += 1;
    }

    if let Some(effort) = bench {
        run_bench(&effort, &label, out_path.as_deref(), check.as_deref());
    }

    let Some(addr) = addr else { usage() };
    let addr: SocketAddr = addr
        .to_socket_addrs()
        .ok()
        .and_then(|mut it| it.next())
        .unwrap_or_else(|| {
            eprintln!("cannot resolve {addr:?}");
            std::process::exit(2);
        });

    config.payload = PayloadSpec::default();
    config.mode = match mode.as_str() {
        "open" => {
            let trace = match trace_kind {
                // Paper traces synthesise their own rate envelope; scale
                // it so the requested `--rate` is the mean.
                Some(kind) => kind.build(duration_s, config.seed).scaled_to_mean(rate),
                None => constant(rate, duration_s),
            };
            LoadMode::Open { trace }
        }
        "closed" => LoadMode::Closed {
            requests_per_connection: requests,
        },
        _ => usage(),
    };

    println!(
        "pard-loadgen → {addr}  app={} mode={mode} connections={} scale={}x tight-frac={}",
        config.app, config.connections, config.time_scale, config.tight_fraction
    );
    let report = match pard_gateway::loadgen::run(addr, &config) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("load generation failed: {e}");
            std::process::exit(1);
        }
    };
    print!("{}", report.render());
    let json = report.to_json(&config.app, &mode, config.connections);
    println!("{json}");
    if let Some(path) = out_path {
        match std::fs::File::create(&path).and_then(|mut f| writeln!(f, "{json}")) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }
}
