//! Load generator for the PARD gateway.
//!
//! ```sh
//! # Open loop: replay a synthesised trace at ~120 req/s for 10 s.
//! pard-loadgen --addr 127.0.0.1:7311 --app tm --mode open --rate 120 --duration 10
//!
//! # Open loop over a paper trace shape (wiki / tweet / azure).
//! pard-loadgen --addr 127.0.0.1:7311 --app tm --mode open --trace tweet --duration 30
//!
//! # Closed loop: 8 connections, 100 requests each, back to back.
//! pard-loadgen --addr 127.0.0.1:7311 --app tm --mode closed --requests 100 --connections 8
//! ```
//!
//! Prints a human summary plus one `BENCH_*.json`-style record; `--out
//! FILE` also writes the record to disk.

use std::io::Write;
use std::net::{SocketAddr, ToSocketAddrs};

use pard_gateway::{LoadMode, LoadgenConfig, Pace};
use pard_workload::{constant, PayloadSpec, TraceKind};

fn usage() -> ! {
    eprintln!(
        "usage: pard-loadgen --addr HOST:PORT [--app NAME] [--mode open|closed]\n\
         \x20                   [--rate RPS] [--duration SECS] [--trace wiki|tweet|azure]\n\
         \x20                   [--requests N] [--connections N] [--slo-ms MS]\n\
         \x20                   [--tight-frac F] [--scale F] [--pace wall|virtual]\n\
         \x20                   [--seed N] [--out FILE]\n\
         \n\
         --pace virtual stamps each open-loop request with its scheduled\n\
         virtual arrival (at_us) and sends at full speed: against a sim\n\
         backend the replay is deterministic and runs at simulation speed\n\
         (forces a single connection)."
    );
    std::process::exit(2);
}

fn main() {
    let mut addr: Option<String> = None;
    let mut config = LoadgenConfig::default();
    let mut mode = "open".to_string();
    let mut rate = 100.0f64;
    let mut duration_s = 10usize;
    let mut trace_kind: Option<TraceKind> = None;
    let mut requests = 100usize;
    let mut out_path: Option<String> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].clone();
        let mut value = || -> String {
            i += 1;
            args.get(i)
                .unwrap_or_else(|| {
                    eprintln!("missing value for {flag}");
                    usage()
                })
                .clone()
        };
        match flag.as_str() {
            "--addr" => addr = Some(value()),
            "--app" => config.app = value(),
            "--mode" => mode = value(),
            "--rate" => rate = value().parse().unwrap_or_else(|_| usage()),
            "--duration" => duration_s = value().parse().unwrap_or_else(|_| usage()),
            "--trace" => {
                trace_kind = Some(match value().as_str() {
                    "wiki" => TraceKind::Wiki,
                    "tweet" => TraceKind::Tweet,
                    "azure" => TraceKind::Azure,
                    other => {
                        eprintln!("unknown trace {other:?}");
                        usage()
                    }
                })
            }
            "--requests" => requests = value().parse().unwrap_or_else(|_| usage()),
            "--connections" => config.connections = value().parse().unwrap_or_else(|_| usage()),
            "--slo-ms" => config.slo_ms = Some(value().parse().unwrap_or_else(|_| usage())),
            "--tight-frac" => config.tight_fraction = value().parse().unwrap_or_else(|_| usage()),
            "--scale" => config.time_scale = value().parse().unwrap_or_else(|_| usage()),
            "--pace" => {
                config.pace = match value().as_str() {
                    "wall" => Pace::Wall,
                    "virtual" => Pace::Virtual,
                    other => {
                        eprintln!("unknown pace {other:?}");
                        usage()
                    }
                }
            }
            "--seed" => config.seed = value().parse().unwrap_or_else(|_| usage()),
            "--out" => out_path = Some(value()),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
        i += 1;
    }

    let Some(addr) = addr else { usage() };
    let addr: SocketAddr = addr
        .to_socket_addrs()
        .ok()
        .and_then(|mut it| it.next())
        .unwrap_or_else(|| {
            eprintln!("cannot resolve {addr:?}");
            std::process::exit(2);
        });

    config.payload = PayloadSpec::default();
    // Virtual pacing forces a single connection (arrivals must reach
    // the engine in schedule order); clamp here so the summary and the
    // JSON record report the connection count actually used.
    if config.pace == Pace::Virtual && mode == "open" && config.connections != 1 {
        eprintln!("--pace virtual replays on a single connection; ignoring --connections");
        config.connections = 1;
    }
    config.mode = match mode.as_str() {
        "open" => {
            let trace = match trace_kind {
                // Paper traces synthesise their own rate envelope; scale
                // it so the requested `--rate` is the mean.
                Some(kind) => kind.build(duration_s, config.seed).scaled_to_mean(rate),
                None => constant(rate, duration_s),
            };
            LoadMode::Open { trace }
        }
        "closed" => LoadMode::Closed {
            requests_per_connection: requests,
        },
        _ => usage(),
    };

    println!(
        "pard-loadgen → {addr}  app={} mode={mode} connections={} scale={}x tight-frac={}",
        config.app, config.connections, config.time_scale, config.tight_fraction
    );
    let report = match pard_gateway::loadgen::run(addr, &config) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("load generation failed: {e}");
            std::process::exit(1);
        }
    };
    print!("{}", report.render());
    let json = report.to_json(&config.app, &mode, config.connections);
    println!("{json}");
    if let Some(path) = out_path {
        match std::fs::File::create(&path).and_then(|mut f| writeln!(f, "{json}")) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }
}
