//! The typed blocking client for the gateway wire protocol.
//!
//! Before this module existed, the load generator, the e2e tests, and
//! the quickstart example each hand-rolled their own socket handling.
//! [`Client`] is the one shared implementation: blocking calls over a
//! single TCP connection, pipelining-aware (any number of requests may
//! be outstanding; responses return in whatever order the server
//! resolves them), with `seq` correlation handled internally and every
//! server reply mapped to a typed [`Outcome`].
//!
//! ```no_run
//! use pard_gateway::client::{CallSpec, Client};
//! use std::time::Duration;
//!
//! let mut client = Client::connect("127.0.0.1:7311".parse().unwrap()).unwrap();
//! let answer = client
//!     .call(&CallSpec::new("tm").with_slo_ms(400), Duration::from_secs(5))
//!     .unwrap()
//!     .expect("answered before the timeout");
//! println!("{:?} after {:?}", answer.outcome, answer.rtt);
//! ```

use std::collections::{HashMap, VecDeque};
use std::io::{self, BufRead, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use pard_sim::DetRng;

use crate::wire::{ErrorCode, Reply, Request, WireOutcome};

/// One request, before the client assigns its correlation number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CallSpec {
    /// Target application name.
    pub app: String,
    /// Per-request SLO override, milliseconds (`None`: server default).
    pub slo_ms: Option<u64>,
    /// Synthetic payload size, bytes.
    pub payload_len: usize,
    /// Scheduled virtual arrival time (µs since engine start) for
    /// deterministic trace replay; see [`crate::wire::Request::at_us`].
    pub at_us: Option<u64>,
}

impl CallSpec {
    /// A request for `app` with no SLO override and an empty payload.
    pub fn new(app: impl Into<String>) -> CallSpec {
        CallSpec {
            app: app.into(),
            slo_ms: None,
            payload_len: 0,
            at_us: None,
        }
    }

    /// Sets the per-request SLO.
    pub fn with_slo_ms(mut self, slo_ms: u64) -> CallSpec {
        self.slo_ms = Some(slo_ms);
        self
    }

    /// Sets the payload size.
    pub fn with_payload_len(mut self, payload_len: usize) -> CallSpec {
        self.payload_len = payload_len;
        self
    }

    /// Sets the scheduled virtual arrival time (deterministic replay).
    pub fn with_at_us(mut self, at_us: u64) -> CallSpec {
        self.at_us = Some(at_us);
        self
    }
}

/// Typed terminal state of one call.
#[derive(Clone, Debug, PartialEq)]
pub enum Outcome {
    /// Completed within its SLO.
    Ok {
        /// Server-assigned request id.
        id: u64,
        /// Server-reported end-to-end latency, virtual milliseconds.
        latency_ms: f64,
    },
    /// Completed after its deadline.
    Violated {
        /// Server-assigned request id.
        id: u64,
        /// Server-reported end-to-end latency, virtual milliseconds.
        latency_ms: f64,
    },
    /// Rejected proactively at the gateway edge, before touching any
    /// worker queue.
    DroppedEdge {
        /// Server-assigned request id (edge id space).
        id: u64,
        /// Short [`pard_metrics::DropReason`] label.
        reason: String,
    },
    /// Admitted, then dropped inside the pipeline.
    DroppedPipeline {
        /// Server-assigned request id.
        id: u64,
        /// Short [`pard_metrics::DropReason`] label.
        reason: String,
    },
    /// The server answered with an error envelope (or an undecodable
    /// line) instead of an outcome.
    Rejected {
        /// Structured reason; `None` for v1 servers or garbled lines.
        code: Option<ErrorCode>,
        /// Human-readable detail.
        message: String,
    },
}

impl Outcome {
    /// Coarse classification label, for comparing scenario runs across
    /// backends.
    pub fn taxonomy(&self) -> &'static str {
        match self {
            Outcome::Ok { .. } => "ok",
            Outcome::Violated { .. } => "violated",
            Outcome::DroppedEdge { .. } => "dropped_edge",
            Outcome::DroppedPipeline { .. } => "dropped_pipeline",
            Outcome::Rejected { .. } => "rejected",
        }
    }

    /// Whether the request completed within its SLO.
    pub fn is_ok(&self) -> bool {
        matches!(self, Outcome::Ok { .. })
    }

    /// The server-assigned request id, when the outcome carries one —
    /// the key for flight-recorder lookups. `Rejected` envelopes have
    /// no engine-side identity.
    pub fn id(&self) -> Option<u64> {
        match *self {
            Outcome::Ok { id, .. }
            | Outcome::Violated { id, .. }
            | Outcome::DroppedEdge { id, .. }
            | Outcome::DroppedPipeline { id, .. } => Some(id),
            Outcome::Rejected { .. } => None,
        }
    }
}

/// Bounded retry with seeded, jittered exponential backoff for
/// *transient* back-pressure replies — `overloaded` (pending table
/// full) and `rate_limited` (edge token bucket empty). Both mean "try
/// again shortly"; every other outcome is terminal: a PARD drop says
/// the *deadline* is unreachable, so resending the same request is
/// exactly the wasted work proactive dropping exists to avoid.
///
/// Backoff for attempt `n` is `min(cap, base · 2ⁿ)` scaled by a jitter
/// factor in `[0.5, 1.0)` drawn from a [`DetRng`] — seeded, so a
/// replayed load test backs off identically run to run.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 = plain [`Client::call`]).
    pub max_retries: u32,
    /// Backoff before the first retry.
    pub base: Duration,
    /// Backoff ceiling.
    pub cap: Duration,
    /// Jitter stream seed.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_retries: 3,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(500),
            seed: 1,
        }
    }
}

impl RetryPolicy {
    /// The jitter stream this policy seeds; keep it across calls so
    /// successive retries draw successive variates.
    pub fn rng(&self) -> DetRng {
        DetRng::new(self.seed)
    }

    /// The jittered backoff before retry number `attempt` (0-based).
    pub fn backoff(&self, attempt: u32, rng: &mut DetRng) -> Duration {
        let doubled = self
            .base
            .saturating_mul(2u32.saturating_pow(attempt.min(20)))
            .min(self.cap);
        doubled.mul_f64(0.5 + 0.5 * rng.f64())
    }

    /// Whether `outcome` is transient back-pressure worth retrying.
    pub fn transient(outcome: &Outcome) -> bool {
        matches!(
            outcome,
            Outcome::Rejected {
                code: Some(ErrorCode::Overloaded | ErrorCode::RateLimited),
                ..
            }
        )
    }
}

/// One answered request.
#[derive(Clone, Debug)]
pub struct Answer {
    /// The client-assigned correlation number [`Client::send`] returned.
    pub seq: u64,
    /// The typed outcome.
    pub outcome: Outcome,
    /// Client-measured wall-clock round-trip time.
    pub rtt: Duration,
}

/// What [`Client::finish`] drained.
#[derive(Debug, Default)]
pub struct Drained {
    /// Answers that arrived during the drain.
    pub answers: Vec<Answer>,
    /// Requests that were never answered.
    pub unanswered: usize,
}

struct State {
    /// Answered calls not yet handed to the caller, keyed by seq.
    ready: HashMap<u64, Answer>,
    /// Completion order of `ready` entries.
    order: VecDeque<u64>,
    /// The authoritative outstanding set: send instant per unanswered
    /// seq (doubles as the RTT origin). O(1) membership keeps reply
    /// delivery linear under deep pipelining.
    sent_at: HashMap<u64, Instant>,
    /// Seqs in send order, cleaned lazily: entries whose seq has left
    /// `sent_at` are skipped when the front is read.
    send_order: VecDeque<u64>,
    /// The reader saw EOF or a fatal transport error.
    closed: bool,
}

impl State {
    fn is_outstanding(&self, seq: u64) -> bool {
        self.sent_at.contains_key(&seq)
    }

    /// Oldest still-outstanding seq, discarding stale `send_order`
    /// entries on the way.
    fn oldest_outstanding(&mut self) -> Option<u64> {
        while let Some(&front) = self.send_order.front() {
            if self.sent_at.contains_key(&front) {
                return Some(front);
            }
            self.send_order.pop_front();
        }
        None
    }
}

struct SharedState {
    state: Mutex<State>,
    cv: Condvar,
}

/// A blocking, pipelining-aware connection to a gateway.
pub struct Client {
    stream: TcpStream,
    out: io::BufWriter<TcpStream>,
    shared: Arc<SharedState>,
    reader: Option<JoinHandle<()>>,
    next_seq: u64,
    seq_stride: u64,
    sent: usize,
    /// Reusable encode buffer: one line allocation per connection, not
    /// per request.
    encode_buf: String,
}

impl Client {
    /// Connects and starts the response reader.
    pub fn connect(addr: SocketAddr) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let read_half = stream.try_clone()?;
        // Short slices so the reader notices shutdown promptly; partial
        // lines survive the timeout (see the read_until comment below).
        read_half.set_read_timeout(Some(Duration::from_millis(100)))?;
        let out = io::BufWriter::new(stream.try_clone()?);
        let shared = Arc::new(SharedState {
            state: Mutex::new(State {
                ready: HashMap::new(),
                order: VecDeque::new(),
                sent_at: HashMap::new(),
                send_order: VecDeque::new(),
                closed: false,
            }),
            cv: Condvar::new(),
        });
        let reader = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || reader_loop(read_half, shared))
        };
        Ok(Client {
            stream,
            out,
            shared,
            reader: Some(reader),
            next_seq: 0,
            seq_stride: 1,
            sent: 0,
            encode_buf: String::with_capacity(256),
        })
    }

    /// Makes this connection stamp wire seqs `start, start + stride,
    /// start + 2·stride, …` instead of `0, 1, 2, …`. A replay group of
    /// `K` connections driving a round-robin-split schedule uses
    /// `(party, K)` so every wire seq equals its *global* schedule
    /// index — the gateway breaks equal-`at_us` ordering ties on seq,
    /// so globally-unique seqs make the replay order a pure function
    /// of the schedule. Call before the first send.
    pub fn set_seq_stride(&mut self, start: u64, stride: u64) {
        self.next_seq = start;
        self.seq_stride = stride.max(1);
    }

    /// Sends one request without waiting (pipelining); returns the
    /// client-assigned `seq` to pass to [`Client::wait`].
    pub fn send(&mut self, spec: &CallSpec) -> io::Result<u64> {
        let seq = self.next_seq;
        self.next_seq += self.seq_stride;
        let request = Request {
            app: spec.app.clone(),
            slo_ms: spec.slo_ms,
            payload_len: spec.payload_len,
            seq: Some(seq),
            at_us: spec.at_us,
        };
        {
            let mut state = self.shared.state.lock();
            state.sent_at.insert(seq, Instant::now());
            state.send_order.push_back(seq);
        }
        self.encode_buf.clear();
        request.encode_into(&mut self.encode_buf);
        self.encode_buf.push('\n');
        let result = self
            .out
            .write_all(self.encode_buf.as_bytes())
            .and_then(|()| self.out.flush());
        if let Err(e) = result {
            // The stale send_order entry is skipped lazily.
            self.shared.state.lock().sent_at.remove(&seq);
            return Err(e);
        }
        self.sent += 1;
        Ok(seq)
    }

    /// Waits up to `timeout` for the answer to `seq`. `None` on
    /// timeout, or if the connection died before the answer arrived.
    pub fn wait(&mut self, seq: u64, timeout: Duration) -> Option<Answer> {
        let deadline = Instant::now() + timeout;
        let mut state = self.shared.state.lock();
        loop {
            if state.ready.contains_key(&seq) {
                state.order.retain(|&s| s != seq);
                return state.ready.remove(&seq);
            }
            // `closed` is set after the reader's final deliver, under
            // this lock — once observed, no answer can arrive any more,
            // whether or not the request is still outstanding.
            if state.closed {
                return None;
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            self.shared.cv.wait_for(&mut state, deadline - now);
        }
    }

    /// Waits up to `timeout` for the next answer in completion order.
    /// `None` on timeout or when nothing can arrive any more.
    pub fn recv(&mut self, timeout: Duration) -> Option<Answer> {
        let deadline = Instant::now() + timeout;
        let mut state = self.shared.state.lock();
        loop {
            if let Some(seq) = state.order.pop_front() {
                return state.ready.remove(&seq);
            }
            if state.closed || state.sent_at.is_empty() {
                return None;
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            self.shared.cv.wait_for(&mut state, deadline - now);
        }
    }

    /// Answers already delivered but not yet collected, without
    /// blocking.
    pub fn try_recv(&mut self) -> Option<Answer> {
        let mut state = self.shared.state.lock();
        let seq = state.order.pop_front()?;
        state.ready.remove(&seq)
    }

    /// Sends one request and waits for its answer — the closed-loop
    /// primitive. `Ok(None)` means the timeout passed (the request
    /// stays outstanding).
    pub fn call(&mut self, spec: &CallSpec, timeout: Duration) -> io::Result<Option<Answer>> {
        let seq = self.send(spec)?;
        Ok(self.wait(seq, timeout))
    }

    /// [`Client::call`] with bounded retry on transient back-pressure
    /// (`overloaded`, `rate_limited`) per `policy`, sleeping the
    /// jittered backoff between attempts. Returns the final answer
    /// plus how many retries were spent on it — callers account
    /// retries separately so counter algebra over *requests* stays
    /// closed while the wire carries more *attempts*. `timeout` bounds
    /// each attempt individually; a timeout is returned as-is (the
    /// request is still outstanding, so resending would double-spend).
    pub fn call_retry(
        &mut self,
        spec: &CallSpec,
        timeout: Duration,
        policy: &RetryPolicy,
        rng: &mut DetRng,
    ) -> io::Result<(Option<Answer>, u32)> {
        let mut retries = 0u32;
        loop {
            let answer = self.call(spec, timeout)?;
            match &answer {
                Some(a) if RetryPolicy::transient(&a.outcome) && retries < policy.max_retries => {
                    std::thread::sleep(policy.backoff(retries, rng));
                    retries += 1;
                }
                _ => return Ok((answer, retries)),
            }
        }
    }

    /// Sends a replay-control line steering a stepped engine's virtual
    /// clock to `to_us` (µs since engine start) — the flush a
    /// scheduled replay sends after its last request so the tail of
    /// the schedule resolves. No response line is produced; outcomes of
    /// outstanding requests keep arriving. Engines without a steerable
    /// clock ignore it.
    pub fn advance(&mut self, to_us: u64) -> io::Result<()> {
        writeln!(
            self.out,
            "{}",
            crate::wire::ClientLine::encode_advance(to_us)
        )
        .and_then(|()| self.out.flush())
    }

    /// Declares this connection a member of a `parties`-strong replay
    /// group. Send before any scheduled (`at_us`) request: the gateway
    /// parks every member's scheduled lines and serves them in global
    /// `(at_us, seq)` order once each member's watermark passes, so a
    /// trace split across connections replays deterministically. No
    /// response line is produced on success.
    pub fn replay_join(&mut self, parties: u64) -> io::Result<()> {
        writeln!(
            self.out,
            "{}",
            crate::wire::ClientLine::encode_replay_join(parties)
        )
        .and_then(|()| self.out.flush())
    }

    /// Requests sent and not yet answered.
    pub fn outstanding(&self) -> usize {
        self.shared.state.lock().sent_at.len()
    }

    /// Requests put on the wire over the connection's lifetime.
    pub fn sent(&self) -> usize {
        self.sent
    }

    /// Half-closes the connection (the server keeps answering
    /// already-sent requests) and drains remaining answers until all
    /// arrive or no progress is made for `grace`.
    pub fn finish(mut self, grace: Duration) -> io::Result<Drained> {
        self.out.flush()?;
        let _ = self.stream.shutdown(Shutdown::Write);
        let mut drained = Drained::default();
        let mut last_progress = Instant::now();
        loop {
            if let Some(answer) = self.recv(Duration::from_millis(250)) {
                drained.answers.push(answer);
                last_progress = Instant::now();
                continue;
            }
            let state = self.shared.state.lock();
            if state.order.is_empty()
                && (state.sent_at.is_empty() || state.closed || last_progress.elapsed() > grace)
            {
                drained.unanswered = state.sent_at.len();
                break;
            }
        }
        Ok(drained)
    }
}

impl Drop for Client {
    fn drop(&mut self) {
        let _ = self.stream.shutdown(Shutdown::Both);
        if let Some(reader) = self.reader.take() {
            let _ = reader.join();
        }
    }
}

fn reader_loop(read_half: TcpStream, shared: Arc<SharedState>) {
    let mut reader = io::BufReader::new(read_half);
    // read_until on bytes, not read_line: read_line discards partial
    // bytes when a read times out (same pitfall the server avoids).
    let mut line = Vec::new();
    loop {
        match reader.read_until(b'\n', &mut line) {
            Ok(0) => break,
            Ok(_) if !line.ends_with(b"\n") => continue, // fragment; keep reading
            Ok(_) => {
                let text = String::from_utf8_lossy(&line);
                let trimmed = text.trim();
                if !trimmed.is_empty() {
                    deliver(&shared, trimmed);
                }
                line.clear();
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => break,
        }
    }
    // EOF with an unterminated final line: serve what arrived.
    let text = String::from_utf8_lossy(&line);
    let trimmed = text.trim();
    if !trimmed.is_empty() {
        deliver(&shared, trimmed);
    }
    let mut state = shared.state.lock();
    state.closed = true;
    shared.cv.notify_all();
}

/// Decodes one reply line into its echoed seq (when present) and a
/// typed [`Outcome`]. Shared by the blocking reader thread and the
/// multiplexed load-generator driver, which correlate differently but
/// must agree on the wire semantics.
pub(crate) fn decode_answer_line(line: &str) -> (Option<u64>, Outcome) {
    match Reply::decode(line) {
        Ok(Reply::Outcome(response)) => {
            let outcome = match (response.outcome, response.edge) {
                (WireOutcome::Ok, _) => Outcome::Ok {
                    id: response.id,
                    latency_ms: response.latency_ms.unwrap_or(0.0),
                },
                (WireOutcome::Violated, _) => Outcome::Violated {
                    id: response.id,
                    latency_ms: response.latency_ms.unwrap_or(0.0),
                },
                (WireOutcome::Dropped, true) => Outcome::DroppedEdge {
                    id: response.id,
                    reason: response.reason.unwrap_or_default(),
                },
                (WireOutcome::Dropped, false) => Outcome::DroppedPipeline {
                    id: response.id,
                    reason: response.reason.unwrap_or_default(),
                },
            };
            (response.seq, outcome)
        }
        Ok(Reply::Error(error)) => (
            error.seq,
            Outcome::Rejected {
                code: error.code,
                message: error.message,
            },
        ),
        Err(e) => (
            None,
            Outcome::Rejected {
                code: None,
                message: format!("undecodable response line: {e}"),
            },
        ),
    }
}

/// Decodes one reply line, correlates it, and wakes waiters.
fn deliver(shared: &SharedState, line: &str) {
    let (seq_on_wire, outcome) = decode_answer_line(line);
    let mut state = shared.state.lock();
    // Correlate by echoed seq when present. A reply without one (v1
    // error envelopes, fully garbled lines) is only attributable when
    // exactly one request is outstanding — outcomes return out of
    // order, so with several in flight the oldest is just a guess that
    // would mislabel an unrelated request AND discard its real answer
    // later as a duplicate. Unattributable errors are dropped; the
    // request they answered surfaces as a timeout/unanswered instead
    // of corrupting a neighbour.
    let seq = match seq_on_wire {
        Some(seq) if state.is_outstanding(seq) => seq,
        Some(_) => return, // duplicate or unsolicited echo; ignore
        None if state.sent_at.len() == 1 => match state.oldest_outstanding() {
            Some(seq) => seq,
            None => return,
        },
        None => return,
    };
    let rtt = state
        .sent_at
        .remove(&seq)
        .map(|t0| t0.elapsed())
        .unwrap_or_default();
    state.ready.insert(seq, Answer { seq, outcome, rtt });
    state.order.push_back(seq);
    shared.cv.notify_all();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn call_spec_builder() {
        let spec = CallSpec::new("tm").with_slo_ms(250).with_payload_len(16);
        assert_eq!(spec.app, "tm");
        assert_eq!(spec.slo_ms, Some(250));
        assert_eq!(spec.payload_len, 16);
    }

    #[test]
    fn taxonomy_labels_are_distinct() {
        let outcomes = [
            Outcome::Ok {
                id: 1,
                latency_ms: 1.0,
            },
            Outcome::Violated {
                id: 1,
                latency_ms: 1.0,
            },
            Outcome::DroppedEdge {
                id: 1,
                reason: "predicted".into(),
            },
            Outcome::DroppedPipeline {
                id: 1,
                reason: "expired".into(),
            },
            Outcome::Rejected {
                code: Some(ErrorCode::Overloaded),
                message: "full".into(),
            },
        ];
        let mut labels: Vec<&str> = outcomes.iter().map(Outcome::taxonomy).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), outcomes.len());
        assert!(outcomes[0].is_ok() && !outcomes[1].is_ok());
    }
}
