//! PARD admission at the serving edge.
//!
//! The paper's broker evaluates Eq. 3 at batch-formation time (`t_b`),
//! inside a worker. The gateway runs the *same* decision earlier, at
//! accept time, from the coarser state a front-end can observe: the
//! per-module queue depths and the static batch plan in
//! [`pard_engine_api::EdgeState`]. A request that already cannot meet its
//! deadline under this estimate is refused before it touches a worker
//! queue — the whole point of proactive dropping, moved to where it
//! saves the most work.
//!
//! The downstream term is estimated over the pipeline's *critical
//! downstream path* (§4.2 DAG handling): the gateway enumerates every
//! entry-to-sink path once at startup
//! ([`pard_pipeline::graph::downstream_paths`]) and
//! [`pard_core::critical_path_estimate`] charges the slowest one.
//! Parallel DAG branches execute concurrently, so the chain-style sum
//! over every downstream module would double-charge a split; on a
//! chain the single path makes both formulas identical.
//!
//! The edge estimate is deliberately a *lower bound* on latency (it
//! assumes zero batch wait and charges only whole batches ahead of the
//! request). Admission therefore never rejects a servable request; the
//! in-worker broker, with its richer Monte-Carlo wait estimate, still
//! re-checks every admitted request at `t_b`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use pard_core::{
    critical_path_estimate, proactive_decision, Decision, DecisionInputs, ReqMeta, SubEstimate,
};
use pard_engine_api::EdgeState;
use pard_sim::{SimDuration, SimTime};

/// Builds the downstream estimate (`L_sub` of §4.2) for a request
/// entering the pipeline's source module, from edge-visible state:
/// queued-batch delay (batches drain one per worker in parallel) plus
/// execution, summed along each downstream path and maximised over
/// `paths` (the critical path), zero batch wait.
pub fn edge_sub_estimate(state: &EdgeState, paths: &[Vec<usize>]) -> SubEstimate {
    critical_path_estimate(
        paths,
        &state.queue_depths,
        &state.workers,
        &state.batch_sizes,
        &state.exec_ms,
    )
}

/// The edge admission check: Eq. 3 for a request arriving `now` with
/// `deadline`, against the current [`EdgeState`]. `source` is the
/// pipeline's entry module and `paths` its downstream paths from there
/// (both static; the gateway computes them once at startup).
pub fn edge_decision(
    now: SimTime,
    deadline: SimTime,
    state: &EdgeState,
    source: usize,
    paths: &[Vec<usize>],
) -> Decision {
    AdmissionFloor::compute(state, source, paths).decide(now, deadline)
}

/// The state-dependent half of the edge decision, precomputed once per
/// [`EdgeState`] snapshot: the entry module's queued-batch delay
/// ([`DecisionInputs::edge_lead`]), its execution duration, and the
/// critical-downstream-path estimate. [`AdmissionFloor::decide`] is
/// then pure arithmetic on three `Copy` durations — no locks, no
/// allocation, no per-request walk over the pipeline — and produces
/// bit-identical decisions to [`edge_decision`] *by construction*:
/// both run [`pard_core::proactive_decision`] over
/// [`DecisionInputs::at_edge_with_lead`].
#[derive(Clone, Copy, Debug)]
pub struct AdmissionFloor {
    /// Queued-batch delay ahead of an arriving request at the source.
    lead: SimDuration,
    /// Profiled execution duration of the source module.
    exec: SimDuration,
    /// Critical-downstream-path estimate (`L_sub`).
    sub: SubEstimate,
}

impl AdmissionFloor {
    /// Precomputes the floor from an edge-state snapshot.
    pub fn compute(state: &EdgeState, source: usize, paths: &[Vec<usize>]) -> AdmissionFloor {
        let exec = SimDuration::from_millis_f64(state.exec_ms[source]);
        AdmissionFloor {
            lead: DecisionInputs::edge_lead(
                state.queue_depths[source],
                state.workers[source],
                state.batch_sizes[source],
                exec,
            ),
            exec,
            sub: edge_sub_estimate(state, paths),
        }
    }

    /// Eq. 3 for a request arriving `now` with `deadline` — the
    /// per-request half of [`edge_decision`].
    pub fn decide(&self, now: SimTime, deadline: SimTime) -> Decision {
        let req = ReqMeta {
            id: 0,
            sent: now,
            deadline,
            arrived: now,
        };
        let inputs = DecisionInputs::at_edge_with_lead(now, self.lead, self.exec, self.sub);
        proactive_decision(&req, &inputs)
    }

    /// [`AdmissionFloor::decide`] plus the inputs it weighed, in the
    /// units the flight recorder stores — so an observer can replay
    /// *why*: the decision drops exactly when `sub_us > slack_us`
    /// (or the slack itself has gone negative).
    pub fn decide_traced(&self, now: SimTime, deadline: SimTime) -> (Decision, EdgeTrace) {
        let budget = deadline.as_micros() as i64 - now.as_micros() as i64;
        let trace = EdgeTrace {
            lead_us: self.lead.as_micros(),
            sub_us: self.sub.total.as_micros(),
            slack_us: budget - self.lead.as_micros() as i64 - self.exec.as_micros() as i64,
        };
        (self.decide(now, deadline), trace)
    }

    /// Queued-batch delay ahead of an arriving request at the source.
    pub fn lead(&self) -> SimDuration {
        self.lead
    }

    /// Critical-downstream-path estimate (`L_sub`) total.
    pub fn sub_total(&self) -> SimDuration {
        self.sub.total
    }
}

/// The Eq. 3 inputs behind one edge decision, as recorded in the
/// flight recorder's `edge` events: the queued-batch lead at the
/// source, the downstream estimate `L_sub`, and the slack
/// `(deadline − now) − lead − exec` it was compared against (negative
/// when the budget is already consumed by the source module alone).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EdgeTrace {
    /// Queued-batch delay ahead of the request at the source (µs).
    pub lead_us: u64,
    /// Critical-downstream-path estimate total (µs).
    pub sub_us: u64,
    /// Remaining budget after the source's lead and execution (µs).
    pub slack_us: i64,
}

/// An immutable, epoch-published view of the serving state: the raw
/// [`EdgeState`] (for `/metrics` gauges) plus the precomputed
/// [`AdmissionFloor`]. Reader threads hold it through an [`Arc`]; the
/// poller publishes a fresh one per refresh tick and never mutates a
/// published snapshot.
#[derive(Clone, Debug)]
pub struct EdgeSnapshot {
    state: EdgeState,
    floor: AdmissionFloor,
}

impl EdgeSnapshot {
    /// Builds a snapshot, precomputing the admission floor.
    pub fn new(state: EdgeState, source: usize, paths: &[Vec<usize>]) -> EdgeSnapshot {
        let floor = AdmissionFloor::compute(&state, source, paths);
        EdgeSnapshot { state, floor }
    }

    /// The admission decision against this snapshot — lock-free pure
    /// arithmetic; see [`AdmissionFloor::decide`].
    #[inline]
    pub fn decide(&self, now: SimTime, deadline: SimTime) -> Decision {
        self.floor.decide(now, deadline)
    }

    /// [`EdgeSnapshot::decide`] plus the Eq. 3 inputs it weighed (see
    /// [`AdmissionFloor::decide_traced`]).
    #[inline]
    pub fn decide_traced(&self, now: SimTime, deadline: SimTime) -> (Decision, EdgeTrace) {
        self.floor.decide_traced(now, deadline)
    }

    /// The precomputed admission floor (for telemetry frames).
    pub fn floor(&self) -> &AdmissionFloor {
        &self.floor
    }

    /// The underlying edge state (for `/metrics` rendering).
    pub fn state(&self) -> &EdgeState {
        &self.state
    }
}

/// Epoch-published [`EdgeSnapshot`] slot.
///
/// The hot path must not lock or clone per request, but `std` has no
/// safe lock-free `Arc` swap (a bare `AtomicPtr` load races the
/// publisher's release of the old snapshot). The design instead splits
/// the cost by frequency: the publisher bumps an atomic **epoch** after
/// replacing the slot (a mutexed `Arc`, cloned only on refresh), and
/// every reader thread keeps its own [`SnapshotReader`] cache — one
/// `Arc` clone per *publication* it observes, not per request. The
/// per-request admission path is then a single `Acquire` load plus
/// pure arithmetic on the cached immutable snapshot; the slot mutex is
/// touched `refresh_hz × readers` times a second in the worst case,
/// independent of request rate.
pub struct EdgePublisher {
    epoch: AtomicU64,
    slot: Mutex<Arc<EdgeSnapshot>>,
}

impl EdgePublisher {
    /// Creates the publisher with an initial snapshot (epoch 0).
    pub fn new(snapshot: EdgeSnapshot) -> EdgePublisher {
        EdgePublisher {
            epoch: AtomicU64::new(0),
            slot: Mutex::new(Arc::new(snapshot)),
        }
    }

    /// Publishes a fresh snapshot and bumps the epoch. Readers observe
    /// the bump (`Release`/`Acquire`) no later than their next request.
    pub fn publish(&self, snapshot: EdgeSnapshot) {
        *self.slot.lock() = Arc::new(snapshot);
        self.epoch.fetch_add(1, Ordering::Release);
    }

    /// The current publication epoch.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// The current snapshot (an `Arc` clone under the slot lock) — for
    /// cold paths like `/metrics`; readers on the request path go
    /// through [`SnapshotReader`].
    pub fn load(&self) -> Arc<EdgeSnapshot> {
        self.slot.lock().clone()
    }
}

/// A reader thread's cached view of an [`EdgePublisher`]: revalidated
/// against the epoch with one atomic load per request, re-cloned only
/// when a new snapshot was published.
pub struct SnapshotReader {
    epoch: u64,
    snapshot: Arc<EdgeSnapshot>,
}

impl SnapshotReader {
    /// Caches the publisher's current snapshot.
    pub fn new(publisher: &EdgePublisher) -> SnapshotReader {
        SnapshotReader {
            epoch: publisher.epoch(),
            snapshot: publisher.load(),
        }
    }

    /// The freshest published snapshot. Lock-free unless the epoch
    /// moved since the last call.
    #[inline]
    pub fn current(&mut self, publisher: &EdgePublisher) -> &EdgeSnapshot {
        let epoch = publisher.epoch();
        if epoch != self.epoch {
            self.snapshot = publisher.load();
            self.epoch = epoch;
        }
        &self.snapshot
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pard_metrics::DropReason;

    fn state(queues: Vec<usize>) -> EdgeState {
        EdgeState {
            queue_depths: queues,
            workers: vec![1, 1, 1],
            batch_sizes: vec![4, 4, 4],
            exec_ms: vec![40.0, 30.0, 20.0],
            slo: SimDuration::from_millis(400),
        }
    }

    /// Downstream paths of the 3-module chain entered at module 0.
    fn chain_paths() -> Vec<Vec<usize>> {
        vec![vec![1, 2]]
    }

    fn decide(now: SimTime, deadline: SimTime, state: &EdgeState) -> Decision {
        edge_decision(now, deadline, state, 0, &chain_paths())
    }

    #[test]
    fn idle_pipeline_admits_feasible_request() {
        // Empty queues: projected latency = 40 + (30 + 20) = 90 ms.
        let s = state(vec![0, 0, 0]);
        let now = SimTime::from_millis(100);
        let d = decide(now, now + SimDuration::from_millis(400), &s);
        assert_eq!(d, Decision::Admit);
    }

    #[test]
    fn hopeless_slo_is_rejected_immediately() {
        // 1 ms budget < 90 ms floor: rejected even when idle.
        let s = state(vec![0, 0, 0]);
        let now = SimTime::from_millis(100);
        let d = decide(now, now + SimDuration::from_millis(1), &s);
        assert_eq!(d, Decision::Drop(DropReason::PredictedViolation));
    }

    #[test]
    fn deep_queues_tip_the_decision() {
        // 40 queued at module 0 → 10 batches → 400 ms before this
        // request's batch even starts.
        let s = state(vec![40, 0, 0]);
        let now = SimTime::from_millis(100);
        let d = decide(now, now + SimDuration::from_millis(400), &s);
        assert_eq!(d, Decision::Drop(DropReason::PredictedViolation));
        // The same deadline with shallow queues is fine.
        let shallow = state(vec![3, 3, 3]);
        let d = decide(now, now + SimDuration::from_millis(400), &shallow);
        assert_eq!(d, Decision::Admit);
    }

    #[test]
    fn worker_parallelism_halves_the_queue_delay() {
        // 40 queued at module 0 is hopeless for one worker (10 rounds ×
        // 40 ms) but fine for four workers draining in parallel.
        let mut s = state(vec![40, 0, 0]);
        let now = SimTime::from_millis(100);
        let deadline = now + SimDuration::from_millis(400);
        assert_eq!(
            decide(now, deadline, &s),
            Decision::Drop(DropReason::PredictedViolation)
        );
        s.workers = vec![4, 1, 1];
        assert_eq!(decide(now, deadline, &s), Decision::Admit);
    }

    #[test]
    fn downstream_queues_count_too() {
        // Module 0 idle, but module 2 has 80 queued → 20 batches × 20 ms
        // = 400 ms of downstream queueing.
        let s = state(vec![0, 0, 80]);
        let now = SimTime::ZERO;
        let sub = edge_sub_estimate(&s, &chain_paths());
        assert_eq!(sub.sum_q, SimDuration::from_millis(400));
        assert_eq!(sub.sum_d, SimDuration::from_millis(50));
        let d = decide(now, now + SimDuration::from_millis(300), &s);
        assert_eq!(d, Decision::Drop(DropReason::PredictedViolation));
    }

    #[test]
    fn expired_deadline_reports_already_expired() {
        let s = state(vec![0, 0, 0]);
        let now = SimTime::from_millis(500);
        let d = decide(now, SimTime::from_millis(400), &s);
        assert_eq!(d, Decision::Drop(DropReason::AlreadyExpired));
    }

    #[test]
    fn snapshot_decisions_match_edge_decision_exactly() {
        // The published-snapshot fast path must be bit-identical to the
        // direct computation across queue depths, SLOs, and shapes —
        // golden taxonomies depend on it.
        let paths = chain_paths();
        let mut cases = Vec::new();
        for q0 in [0usize, 3, 8, 40, 400] {
            for q2 in [0usize, 20, 80] {
                cases.push(state(vec![q0, 1, q2]));
            }
        }
        for s in cases {
            let snapshot = EdgeSnapshot::new(s.clone(), 0, &paths);
            for now_ms in [0u64, 100, 500] {
                for slo_ms in [1u64, 90, 120, 400, 1000] {
                    let now = SimTime::from_millis(now_ms);
                    for deadline in [
                        now + SimDuration::from_millis(slo_ms),
                        SimTime::from_millis(slo_ms), // possibly already expired
                    ] {
                        assert_eq!(
                            snapshot.decide(now, deadline),
                            edge_decision(now, deadline, &s, 0, &paths),
                            "q={:?} now={now_ms} slo={slo_ms}",
                            s.queue_depths,
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn traced_decision_matches_decide_and_explains_it() {
        // The trace is the decision's own arithmetic: a predicted drop
        // happens exactly when L_sub exceeds the slack (and an expired
        // deadline shows as negative slack).
        let paths = chain_paths();
        for q0 in [0usize, 3, 8, 40, 400] {
            let snapshot = EdgeSnapshot::new(state(vec![q0, 1, 0]), 0, &paths);
            let now = SimTime::from_millis(100);
            for deadline in [
                now + SimDuration::from_millis(1),
                now + SimDuration::from_millis(90),
                now + SimDuration::from_millis(400),
                SimTime::from_millis(50), // already expired
            ] {
                let (decision, trace) = snapshot.decide_traced(now, deadline);
                assert_eq!(decision, snapshot.decide(now, deadline));
                let dropped = matches!(decision, Decision::Drop(_));
                assert_eq!(
                    dropped,
                    trace.slack_us < 0 || trace.sub_us as i64 > trace.slack_us,
                    "q0={q0} deadline={deadline:?} trace={trace:?}"
                );
            }
        }
    }

    #[test]
    fn publisher_epoch_tracks_publications_and_readers_refresh() {
        let paths = chain_paths();
        let publisher = EdgePublisher::new(EdgeSnapshot::new(state(vec![0, 0, 0]), 0, &paths));
        let mut reader = SnapshotReader::new(&publisher);
        let now = SimTime::ZERO;
        let fine = now + SimDuration::from_millis(400);
        assert_eq!(
            reader.current(&publisher).decide(now, fine),
            Decision::Admit
        );

        // Publish a congested snapshot: the same reader must observe it
        // on its next request without being recreated.
        publisher.publish(EdgeSnapshot::new(state(vec![400, 0, 0]), 0, &paths));
        assert_eq!(publisher.epoch(), 1);
        assert_eq!(
            reader.current(&publisher).decide(now, fine),
            Decision::Drop(DropReason::PredictedViolation)
        );
        // The cold-path load sees the same snapshot.
        assert_eq!(publisher.load().state().queue_depths, vec![400, 0, 0]);
    }

    #[test]
    fn parallel_branches_are_charged_once_not_summed() {
        // Diamond 0 → {1, 2} → 3 with symmetric 100 ms branches and a
        // 260 ms budget at the edge: the critical-path estimate
        // (40 + 100 + 20 = 160 ms) admits, while the old chain-style
        // sum over every module (40 + 100 + 100 + 20 = 260 ms… plus
        // any queueing) would sit exactly at the cliff and reject as
        // soon as anything queues.
        let s = EdgeState {
            queue_depths: vec![0, 4, 4, 0],
            workers: vec![1, 1, 1, 1],
            batch_sizes: vec![4, 4, 4, 4],
            exec_ms: vec![40.0, 100.0, 100.0, 20.0],
            slo: SimDuration::from_millis(400),
        };
        let paths = vec![vec![1, 3], vec![2, 3]];
        let sub = edge_sub_estimate(&s, &paths);
        // One branch + sink, with that branch's one queued batch.
        assert_eq!(sub.total, SimDuration::from_millis(220));
        let now = SimTime::ZERO;
        let d = edge_decision(now, now + SimDuration::from_millis(300), &s, 0, &paths);
        assert_eq!(d, Decision::Admit);
    }
}
