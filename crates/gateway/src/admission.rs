//! PARD admission at the serving edge.
//!
//! The paper's broker evaluates Eq. 3 at batch-formation time (`t_b`),
//! inside a worker. The gateway runs the *same* decision earlier, at
//! accept time, from the coarser state a front-end can observe: the
//! per-module queue depths and the static batch plan in
//! [`pard_engine_api::EdgeState`]. A request that already cannot meet its
//! deadline under this estimate is refused before it touches a worker
//! queue — the whole point of proactive dropping, moved to where it
//! saves the most work.
//!
//! The downstream term is estimated over the pipeline's *critical
//! downstream path* (§4.2 DAG handling): the gateway enumerates every
//! entry-to-sink path once at startup
//! ([`pard_pipeline::graph::downstream_paths`]) and
//! [`pard_core::critical_path_estimate`] charges the slowest one.
//! Parallel DAG branches execute concurrently, so the chain-style sum
//! over every downstream module would double-charge a split; on a
//! chain the single path makes both formulas identical.
//!
//! The edge estimate is deliberately a *lower bound* on latency (it
//! assumes zero batch wait and charges only whole batches ahead of the
//! request). Admission therefore never rejects a servable request; the
//! in-worker broker, with its richer Monte-Carlo wait estimate, still
//! re-checks every admitted request at `t_b`.

use pard_core::{
    critical_path_estimate, proactive_decision, Decision, DecisionInputs, ReqMeta, SubEstimate,
};
use pard_engine_api::EdgeState;
use pard_sim::{SimDuration, SimTime};

/// Builds the downstream estimate (`L_sub` of §4.2) for a request
/// entering the pipeline's source module, from edge-visible state:
/// queued-batch delay (batches drain one per worker in parallel) plus
/// execution, summed along each downstream path and maximised over
/// `paths` (the critical path), zero batch wait.
pub fn edge_sub_estimate(state: &EdgeState, paths: &[Vec<usize>]) -> SubEstimate {
    critical_path_estimate(
        paths,
        &state.queue_depths,
        &state.workers,
        &state.batch_sizes,
        &state.exec_ms,
    )
}

/// The edge admission check: Eq. 3 for a request arriving `now` with
/// `deadline`, against the current [`EdgeState`]. `source` is the
/// pipeline's entry module and `paths` its downstream paths from there
/// (both static; the gateway computes them once at startup).
pub fn edge_decision(
    now: SimTime,
    deadline: SimTime,
    state: &EdgeState,
    source: usize,
    paths: &[Vec<usize>],
) -> Decision {
    let req = ReqMeta {
        id: 0,
        sent: now,
        deadline,
        arrived: now,
    };
    let inputs = DecisionInputs::at_edge(
        now,
        state.queue_depths[source],
        state.workers[source],
        state.batch_sizes[source],
        SimDuration::from_millis_f64(state.exec_ms[source]),
        edge_sub_estimate(state, paths),
    );
    proactive_decision(&req, &inputs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pard_metrics::DropReason;

    fn state(queues: Vec<usize>) -> EdgeState {
        EdgeState {
            queue_depths: queues,
            workers: vec![1, 1, 1],
            batch_sizes: vec![4, 4, 4],
            exec_ms: vec![40.0, 30.0, 20.0],
            slo: SimDuration::from_millis(400),
        }
    }

    /// Downstream paths of the 3-module chain entered at module 0.
    fn chain_paths() -> Vec<Vec<usize>> {
        vec![vec![1, 2]]
    }

    fn decide(now: SimTime, deadline: SimTime, state: &EdgeState) -> Decision {
        edge_decision(now, deadline, state, 0, &chain_paths())
    }

    #[test]
    fn idle_pipeline_admits_feasible_request() {
        // Empty queues: projected latency = 40 + (30 + 20) = 90 ms.
        let s = state(vec![0, 0, 0]);
        let now = SimTime::from_millis(100);
        let d = decide(now, now + SimDuration::from_millis(400), &s);
        assert_eq!(d, Decision::Admit);
    }

    #[test]
    fn hopeless_slo_is_rejected_immediately() {
        // 1 ms budget < 90 ms floor: rejected even when idle.
        let s = state(vec![0, 0, 0]);
        let now = SimTime::from_millis(100);
        let d = decide(now, now + SimDuration::from_millis(1), &s);
        assert_eq!(d, Decision::Drop(DropReason::PredictedViolation));
    }

    #[test]
    fn deep_queues_tip_the_decision() {
        // 40 queued at module 0 → 10 batches → 400 ms before this
        // request's batch even starts.
        let s = state(vec![40, 0, 0]);
        let now = SimTime::from_millis(100);
        let d = decide(now, now + SimDuration::from_millis(400), &s);
        assert_eq!(d, Decision::Drop(DropReason::PredictedViolation));
        // The same deadline with shallow queues is fine.
        let shallow = state(vec![3, 3, 3]);
        let d = decide(now, now + SimDuration::from_millis(400), &shallow);
        assert_eq!(d, Decision::Admit);
    }

    #[test]
    fn worker_parallelism_halves_the_queue_delay() {
        // 40 queued at module 0 is hopeless for one worker (10 rounds ×
        // 40 ms) but fine for four workers draining in parallel.
        let mut s = state(vec![40, 0, 0]);
        let now = SimTime::from_millis(100);
        let deadline = now + SimDuration::from_millis(400);
        assert_eq!(
            decide(now, deadline, &s),
            Decision::Drop(DropReason::PredictedViolation)
        );
        s.workers = vec![4, 1, 1];
        assert_eq!(decide(now, deadline, &s), Decision::Admit);
    }

    #[test]
    fn downstream_queues_count_too() {
        // Module 0 idle, but module 2 has 80 queued → 20 batches × 20 ms
        // = 400 ms of downstream queueing.
        let s = state(vec![0, 0, 80]);
        let now = SimTime::ZERO;
        let sub = edge_sub_estimate(&s, &chain_paths());
        assert_eq!(sub.sum_q, SimDuration::from_millis(400));
        assert_eq!(sub.sum_d, SimDuration::from_millis(50));
        let d = decide(now, now + SimDuration::from_millis(300), &s);
        assert_eq!(d, Decision::Drop(DropReason::PredictedViolation));
    }

    #[test]
    fn expired_deadline_reports_already_expired() {
        let s = state(vec![0, 0, 0]);
        let now = SimTime::from_millis(500);
        let d = decide(now, SimTime::from_millis(400), &s);
        assert_eq!(d, Decision::Drop(DropReason::AlreadyExpired));
    }

    #[test]
    fn parallel_branches_are_charged_once_not_summed() {
        // Diamond 0 → {1, 2} → 3 with symmetric 100 ms branches and a
        // 260 ms budget at the edge: the critical-path estimate
        // (40 + 100 + 20 = 160 ms) admits, while the old chain-style
        // sum over every module (40 + 100 + 100 + 20 = 260 ms… plus
        // any queueing) would sit exactly at the cliff and reject as
        // soon as anything queues.
        let s = EdgeState {
            queue_depths: vec![0, 4, 4, 0],
            workers: vec![1, 1, 1, 1],
            batch_sizes: vec![4, 4, 4, 4],
            exec_ms: vec![40.0, 100.0, 100.0, 20.0],
            slo: SimDuration::from_millis(400),
        };
        let paths = vec![vec![1, 3], vec![2, 3]];
        let sub = edge_sub_estimate(&s, &paths);
        // One branch + sink, with that branch's one queued batch.
        assert_eq!(sub.total, SimDuration::from_millis(220));
        let now = SimTime::ZERO;
        let d = edge_decision(now, now + SimDuration::from_millis(300), &s, 0, &paths);
        assert_eq!(d, Decision::Admit);
    }
}
