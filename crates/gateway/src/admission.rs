//! PARD admission at the serving edge.
//!
//! The paper's broker evaluates Eq. 3 at batch-formation time (`t_b`),
//! inside a worker. The gateway runs the *same* decision earlier, at
//! accept time, from the coarser state a front-end can observe: the
//! per-module queue depths and the static batch plan in
//! [`pard_engine_api::EdgeState`]. A request that already cannot meet its
//! deadline under this estimate is refused before it touches a worker
//! queue — the whole point of proactive dropping, moved to where it
//! saves the most work.
//!
//! The edge estimate is deliberately a *lower bound* on latency (it
//! assumes zero batch wait and charges only whole batches ahead of the
//! request). Admission therefore never rejects a servable request; the
//! in-worker broker, with its richer Monte-Carlo wait estimate, still
//! re-checks every admitted request at `t_b`.

use pard_core::{proactive_decision, Decision, DecisionInputs, ReqMeta, SubEstimate};
use pard_engine_api::EdgeState;
use pard_sim::{SimDuration, SimTime};

/// Builds the downstream estimate (`L_sub` of §4.2) for a request
/// entering module 0, from edge-visible state: queued-batch delay
/// (batches drain one per worker in parallel) plus execution for every
/// subsequent module, zero batch wait.
pub fn edge_sub_estimate(state: &EdgeState) -> SubEstimate {
    let mut sum_q = SimDuration::ZERO;
    let mut sum_d = SimDuration::ZERO;
    for k in 1..state.exec_ms.len() {
        let exec = SimDuration::from_millis_f64(state.exec_ms[k]);
        let batches_ahead = state.queue_depths[k] / state.batch_sizes[k].max(1);
        let rounds = batches_ahead / state.workers[k].max(1);
        sum_q += exec * rounds as u64;
        sum_d += exec;
    }
    SubEstimate {
        sum_q,
        sum_d,
        wait_q: SimDuration::ZERO,
        total: sum_q + sum_d,
    }
}

/// The edge admission check: Eq. 3 for a request arriving `now` with
/// `deadline`, against the current [`EdgeState`].
pub fn edge_decision(now: SimTime, deadline: SimTime, state: &EdgeState) -> Decision {
    let req = ReqMeta {
        id: 0,
        sent: now,
        deadline,
        arrived: now,
    };
    let inputs = DecisionInputs::at_edge(
        now,
        state.queue_depths[0],
        state.workers[0],
        state.batch_sizes[0],
        SimDuration::from_millis_f64(state.exec_ms[0]),
        edge_sub_estimate(state),
    );
    proactive_decision(&req, &inputs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pard_metrics::DropReason;

    fn state(queues: Vec<usize>) -> EdgeState {
        EdgeState {
            queue_depths: queues,
            workers: vec![1, 1, 1],
            batch_sizes: vec![4, 4, 4],
            exec_ms: vec![40.0, 30.0, 20.0],
            slo: SimDuration::from_millis(400),
        }
    }

    #[test]
    fn idle_pipeline_admits_feasible_request() {
        // Empty queues: projected latency = 40 + (30 + 20) = 90 ms.
        let s = state(vec![0, 0, 0]);
        let now = SimTime::from_millis(100);
        let d = edge_decision(now, now + SimDuration::from_millis(400), &s);
        assert_eq!(d, Decision::Admit);
    }

    #[test]
    fn hopeless_slo_is_rejected_immediately() {
        // 1 ms budget < 90 ms floor: rejected even when idle.
        let s = state(vec![0, 0, 0]);
        let now = SimTime::from_millis(100);
        let d = edge_decision(now, now + SimDuration::from_millis(1), &s);
        assert_eq!(d, Decision::Drop(DropReason::PredictedViolation));
    }

    #[test]
    fn deep_queues_tip_the_decision() {
        // 40 queued at module 0 → 10 batches → 400 ms before this
        // request's batch even starts.
        let s = state(vec![40, 0, 0]);
        let now = SimTime::from_millis(100);
        let d = edge_decision(now, now + SimDuration::from_millis(400), &s);
        assert_eq!(d, Decision::Drop(DropReason::PredictedViolation));
        // The same deadline with shallow queues is fine.
        let shallow = state(vec![3, 3, 3]);
        let d = edge_decision(now, now + SimDuration::from_millis(400), &shallow);
        assert_eq!(d, Decision::Admit);
    }

    #[test]
    fn worker_parallelism_halves_the_queue_delay() {
        // 40 queued at module 0 is hopeless for one worker (10 rounds ×
        // 40 ms) but fine for four workers draining in parallel.
        let mut s = state(vec![40, 0, 0]);
        let now = SimTime::from_millis(100);
        let deadline = now + SimDuration::from_millis(400);
        assert_eq!(
            edge_decision(now, deadline, &s),
            Decision::Drop(DropReason::PredictedViolation)
        );
        s.workers = vec![4, 1, 1];
        assert_eq!(edge_decision(now, deadline, &s), Decision::Admit);
    }

    #[test]
    fn downstream_queues_count_too() {
        // Module 0 idle, but module 2 has 80 queued → 20 batches × 20 ms
        // = 400 ms of downstream queueing.
        let s = state(vec![0, 0, 80]);
        let now = SimTime::ZERO;
        let sub = edge_sub_estimate(&s);
        assert_eq!(sub.sum_q, SimDuration::from_millis(400));
        assert_eq!(sub.sum_d, SimDuration::from_millis(50));
        let d = edge_decision(now, now + SimDuration::from_millis(300), &s);
        assert_eq!(d, Decision::Drop(DropReason::PredictedViolation));
    }

    #[test]
    fn expired_deadline_reports_already_expired() {
        let s = state(vec![0, 0, 0]);
        let now = SimTime::from_millis(500);
        let d = edge_decision(now, SimTime::from_millis(400), &s);
        assert_eq!(d, Decision::Drop(DropReason::AlreadyExpired));
    }
}
