//! Minimal readiness polling over raw `epoll`, without a `libc` crate.
//!
//! The C10K event loop in [`crate::server`] needs three primitives the
//! standard library does not expose: level-triggered readiness
//! notification across thousands of sockets (`epoll`), a way for other
//! threads to interrupt a sleeping poller (a self-pipe [`Waker`]), and
//! nonblocking mode on accepted streams (`fcntl`). The offline build
//! environment has no `mio`/`libc` crates, but `std` already links the
//! platform C library on Linux, so the handful of symbols we need are
//! declared here directly — the same spirit as the vendored shims in
//! `shims/`, kept to the smallest surface that serves the gateway.
//!
//! Everything here is Linux-only in behaviour (the gateway's event loop
//! is the only consumer and the project targets Linux); the FFI block
//! compiles on any unix because the symbols resolve from the platform
//! libc at link time.

use std::io;
use std::os::fd::RawFd;

// ---------------------------------------------------------------------------
// FFI surface
// ---------------------------------------------------------------------------

/// One readiness record as the kernel fills it in `epoll_wait`.
///
/// On x86-64 Linux the kernel ABI packs this struct (12 bytes, no
/// padding after `events`); on other architectures it is the natural
/// C layout.
#[cfg(target_arch = "x86_64")]
#[repr(C, packed)]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

#[cfg(not(target_arch = "x86_64"))]
#[repr(C)]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
    fn pipe2(fds: *mut i32, flags: i32) -> i32;
    fn close(fd: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    fn fcntl(fd: i32, cmd: i32, arg: i32) -> i32;
}

const EPOLL_CLOEXEC: i32 = 0x80000;
const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;

const F_GETFL: i32 = 3;
const F_SETFL: i32 = 4;
const O_NONBLOCK: i32 = 0x800;
const O_CLOEXEC: i32 = 0x80000;

/// Readiness for reading (`EPOLLIN`).
pub const READABLE: u32 = 0x1;
/// Readiness for writing (`EPOLLOUT`).
pub const WRITABLE: u32 = 0x4;
/// Error condition (`EPOLLERR`) — always reported, never requested.
pub const ERROR: u32 = 0x8;
/// Peer hangup (`EPOLLHUP`) — always reported, never requested.
pub const HANGUP: u32 = 0x10;

// ---------------------------------------------------------------------------
// Safe wrappers
// ---------------------------------------------------------------------------

/// One readiness notification: which registration fired, and how.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// The `token` passed at registration time.
    pub token: u64,
    /// Bitmask of [`READABLE`] / [`WRITABLE`] / [`ERROR`] / [`HANGUP`].
    pub readiness: u32,
}

impl Event {
    /// The fd can be read (or has hung up / errored, which read()
    /// surfaces as EOF or an error — both want a read attempt).
    pub fn is_readable(self) -> bool {
        self.readiness & (READABLE | ERROR | HANGUP) != 0
    }

    /// The fd can accept more bytes.
    pub fn is_writable(self) -> bool {
        self.readiness & (WRITABLE | ERROR | HANGUP) != 0
    }
}

/// A level-triggered `epoll` instance.
///
/// Registrations carry a caller-chosen `u64` token returned verbatim in
/// [`Event::token`]; the poller never interprets it. Level-triggered
/// mode means a fd with unconsumed readiness fires again on the next
/// `wait`, so the event loop may process a bounded amount per tick
/// without bookkeeping re-arm state.
pub struct Poller {
    epfd: RawFd,
}

impl Poller {
    /// Creates a new epoll instance.
    pub fn new() -> io::Result<Poller> {
        let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Poller { epfd })
    }

    /// Registers `fd` for the given `interest` mask under `token`.
    pub fn add(&self, fd: RawFd, token: u64, interest: u32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, token, interest)
    }

    /// Changes the interest mask of an already-registered fd.
    pub fn modify(&self, fd: RawFd, token: u64, interest: u32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, token, interest)
    }

    /// Removes a registration. Safe to call for fds about to be closed;
    /// errors from already-closed fds are surfaced, not swallowed.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        let mut ev = EpollEvent { events: 0, data: 0 };
        let rc = unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    fn ctl(&self, op: i32, fd: RawFd, token: u64, interest: u32) -> io::Result<()> {
        let mut ev = EpollEvent {
            events: interest,
            data: token,
        };
        let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Blocks until readiness or timeout, appending events to `out`.
    ///
    /// `timeout_ms` of `None` blocks indefinitely; `Some(0)` polls.
    /// Interrupted waits (`EINTR`) return an empty batch rather than an
    /// error, so callers treat them exactly like a timeout.
    pub fn wait(&self, out: &mut Vec<Event>, timeout_ms: Option<i32>) -> io::Result<()> {
        const MAX_BATCH: usize = 1024;
        let mut buf = [EpollEvent { events: 0, data: 0 }; MAX_BATCH];
        let timeout = timeout_ms.unwrap_or(-1);
        let n = unsafe { epoll_wait(self.epfd, buf.as_mut_ptr(), MAX_BATCH as i32, timeout) };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(());
            }
            return Err(err);
        }
        for ev in buf.iter().take(n as usize) {
            // Copy out of the (possibly packed) struct before use.
            let events = ev.events;
            let data = ev.data;
            out.push(Event {
                token: data,
                readiness: events,
            });
        }
        Ok(())
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        unsafe { close(self.epfd) };
    }
}

/// A self-pipe that interrupts a [`Poller`] sleeping in `wait`.
///
/// Register the read end under a reserved token; `wake` writes one byte
/// (nonblocking, so a full pipe — meaning a wake is already pending —
/// is success), and the poller calls `drain` when it sees the token.
pub struct Waker {
    read_fd: RawFd,
    write_fd: RawFd,
}

impl Waker {
    /// Creates the pipe pair, both ends nonblocking and cloexec.
    pub fn new() -> io::Result<Waker> {
        let mut fds = [0i32; 2];
        let rc = unsafe { pipe2(fds.as_mut_ptr(), O_NONBLOCK | O_CLOEXEC) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Waker {
            read_fd: fds[0],
            write_fd: fds[1],
        })
    }

    /// The fd to register with the poller (read end).
    pub fn fd(&self) -> RawFd {
        self.read_fd
    }

    /// Interrupts the poller. Idempotent while a wake is pending: a
    /// full pipe means the sleeper has not drained yet, which is fine.
    pub fn wake(&self) {
        let byte = 1u8;
        unsafe { write(self.write_fd, &byte, 1) };
    }

    /// Consumes all pending wake bytes (called by the poller thread).
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        loop {
            let n = unsafe { read(self.read_fd, buf.as_mut_ptr(), buf.len()) };
            if n <= 0 {
                break;
            }
        }
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        unsafe {
            close(self.read_fd);
            close(self.write_fd);
        }
    }
}

// `wake`/`drain` only touch the two fds, which are valid for the
// struct's lifetime; concurrent use from multiple threads is exactly
// the self-pipe pattern's point.
unsafe impl Send for Waker {}
unsafe impl Sync for Waker {}

/// Puts `fd` into nonblocking mode.
pub fn set_nonblocking(fd: RawFd) -> io::Result<()> {
    let flags = unsafe { fcntl(fd, F_GETFL, 0) };
    if flags < 0 {
        return Err(io::Error::last_os_error());
    }
    let rc = unsafe { fcntl(fd, F_SETFL, flags | O_NONBLOCK) };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;
    use std::time::Instant;

    #[test]
    fn waker_interrupts_a_blocking_wait() {
        let poller = Poller::new().unwrap();
        let waker = std::sync::Arc::new(Waker::new().unwrap());
        poller.add(waker.fd(), u64::MAX, READABLE).unwrap();

        let w = std::sync::Arc::clone(&waker);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(50));
            w.wake();
        });

        let mut events = Vec::new();
        let start = Instant::now();
        // Wait far longer than the wake delay: the wake must cut it short.
        poller.wait(&mut events, Some(10_000)).unwrap();
        assert!(start.elapsed().as_millis() < 5_000);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, u64::MAX);
        assert!(events[0].is_readable());
        waker.drain();

        // Drained: the next zero-timeout poll reports nothing.
        events.clear();
        poller.wait(&mut events, Some(0)).unwrap();
        assert!(events.is_empty());
        handle.join().unwrap();
    }

    #[test]
    fn socket_readiness_and_interest_changes() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (mut server, _) = listener.accept().unwrap();
        set_nonblocking(server.as_raw_fd()).unwrap();

        let poller = Poller::new().unwrap();
        poller.add(server.as_raw_fd(), 7, READABLE).unwrap();

        // Nothing to read yet.
        let mut events = Vec::new();
        poller.wait(&mut events, Some(0)).unwrap();
        assert!(events.is_empty());

        // Client writes → server side turns readable.
        client.write_all(b"ping").unwrap();
        poller.wait(&mut events, Some(2_000)).unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.is_readable()));

        // Level-triggered: unconsumed input fires again.
        events.clear();
        poller.wait(&mut events, Some(0)).unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.is_readable()));

        let mut buf = [0u8; 16];
        let n = server.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"ping");

        // Consumed → quiet again under READABLE-only interest…
        events.clear();
        poller.wait(&mut events, Some(0)).unwrap();
        assert!(events.is_empty());

        // …but flipping interest to WRITABLE fires immediately (an idle
        // socket's send buffer has space).
        poller.modify(server.as_raw_fd(), 7, WRITABLE).unwrap();
        events.clear();
        poller.wait(&mut events, Some(2_000)).unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.is_writable()));

        // Peer close under READABLE interest surfaces as readable
        // (read() will then return 0 = EOF).
        poller.modify(server.as_raw_fd(), 7, READABLE).unwrap();
        drop(client);
        events.clear();
        poller.wait(&mut events, Some(2_000)).unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.is_readable()));

        poller.delete(server.as_raw_fd()).unwrap();
    }

    #[test]
    fn many_registrations_report_the_right_tokens() {
        // A miniature of the C10K shape: dozens of sockets, only some
        // ready, and the ready set maps back through tokens exactly.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let poller = Poller::new().unwrap();

        let mut clients = Vec::new();
        let mut servers = Vec::new();
        for token in 0..40u64 {
            let client = TcpStream::connect(addr).unwrap();
            let (server, _) = listener.accept().unwrap();
            set_nonblocking(server.as_raw_fd()).unwrap();
            poller.add(server.as_raw_fd(), token, READABLE).unwrap();
            clients.push(client);
            servers.push(server);
        }

        // Every third client speaks.
        let mut expect = Vec::new();
        for (i, client) in clients.iter_mut().enumerate() {
            if i % 3 == 0 {
                client.write_all(b"x").unwrap();
                expect.push(i as u64);
            }
        }

        let mut got = Vec::new();
        let deadline = Instant::now() + std::time::Duration::from_secs(5);
        while got.len() < expect.len() && Instant::now() < deadline {
            let mut events = Vec::new();
            poller.wait(&mut events, Some(100)).unwrap();
            for ev in events {
                // Consume so level-triggering doesn't repeat it.
                let mut buf = [0u8; 4];
                let _ = std::io::Read::read(&mut &servers[ev.token as usize], &mut buf);
                got.push(ev.token);
            }
        }
        got.sort_unstable();
        got.dedup();
        assert_eq!(got, expect);
    }
}
