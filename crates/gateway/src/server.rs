//! The TCP serving front-end.
//!
//! One process serves *many* apps: each wire request routes by its
//! `app` field to a registered [`pard_engine_api::EngineHandle`] (the
//! live threaded runtime or the deterministic simulator), and every
//! app shares one connection fabric, one pending table (with per-tenant
//! weighted-fair quotas), and one observability listener. The PARD
//! admission check runs at accept time — a hopeless request is
//! answered `dropped` without ever touching a worker queue. Requests
//! carrying a scheduled arrival (`at_us`, deterministic trace replay)
//! first steer a stepped engine's virtual clock to that instant and
//! are admitted against a snapshot taken there, making replayed
//! scenarios bit-reproducible end to end — including replays split
//! across many connections, which coordinate through `replay_join`
//! watermarks (see [`crate::wire::ClientLine::Join`]).
//!
//! # The event loop
//!
//! Connection I/O is readiness-based, not thread-per-connection: a
//! small fixed pool of shard threads each runs a level-triggered
//! [`crate::netpoll::Poller`] over its slice of nonblocking sockets,
//! so one process holds tens of thousands of connections without tens
//! of thousands of stacks. Cross-thread work (new connections from the
//! acceptor, replies from the dispatchers) arrives on a per-shard
//! inbox whose self-pipe waker interrupts a sleeping poll; a
//! `sleeping` flag keeps the wake syscall off the path while the shard
//! is busy. Each shard processes a bounded number of lines per
//! connection per tick, so one pipelining flood cannot starve the
//! polite connections sharing its shard.
//!
//! # The hot path
//!
//! * **Admission is lock-free.** The poller publishes an immutable
//!   [`EdgeSnapshot`] (with the critical-path admission arithmetic
//!   precomputed) through an epoch counter; each shard thread
//!   revalidates its cached `Arc` with a single atomic load and
//!   decides with pure arithmetic — no lock, no clone, no allocation
//!   (see [`crate::admission::EdgePublisher`]).
//! * **The pending table is sharded and tenant-fair.** Submits and
//!   completions on different requests land on different
//!   [`crate::pending::PendingMap`] shards; capacity is one atomic
//!   reservation, the submit/complete race is closed by orphan parking,
//!   and under overload each app keeps a guaranteed share of the table
//!   (see [`PendingMap::with_tenants`]).
//! * **Per-tenant rate limits run at the edge.** An app configured
//!   with a [`RateLimit`] refuses excess requests with a
//!   `rate_limited` envelope before the admission math runs — the
//!   token bucket refills on the engine's own clock, so limits are
//!   deterministic under simulated time.
//! * **Submits wake the pump.** Stepped engines are driven the moment
//!   work arrives instead of on the pump thread's next idle tick,
//!   which is what bounds closed-loop RTT on the sim backend.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::{AsRawFd, RawFd};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use pard_core::Decision;
use pard_engine_api::{Completion, EngineHandle, SubmitSpec};
use pard_metrics::{DropReason, ModuleDropCounters, Outcome, RequestLog, ServingCounters};
use pard_obs::{EngineFrame, FlightRecorder, FrameBus, ObsEvent, ObsKind};
use pard_sim::{SimDuration, SimTime, TokenBucket};

use crate::adaptive::{AdaptiveConfig, AdaptiveState};
use crate::admission::{EdgePublisher, EdgeSnapshot, SnapshotReader};
use crate::netpoll::{Poller, Waker, READABLE, WRITABLE};
use crate::pending::PendingMap;
use crate::telemetry::{window_rates, RttWindow, DEFAULT_RTT_SAMPLES};
use crate::wire::{seq_hint, ClientLine, ErrorCode, Request, Response};

/// Hard cap on one request line; a connection exceeding it gets an
/// error response and is closed, bounding per-connection memory against
/// newline-free byte streams.
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// Ids for edge-rejected requests live in their own space so they can
/// never collide with engine-assigned ids (record indices, which a
/// process cannot push anywhere near 2^52). The base is kept within
/// f64's exact-integer range because wire ids travel as JSON numbers:
/// 2^52 + seq round-trips exactly for any realistic seq, where 2^63
/// would silently lose its low bits.
pub const EDGE_ID_BASE: u64 = 1 << 52;

/// Pending-table keys namespace the engine-assigned id by app index so
/// two engines assigning the same dense ids cannot collide in the
/// shared table. App 0's keys equal its raw ids (the single-app case
/// is bit-identical to the pre-multi-tenant gateway), and the shift
/// clears both the engine-id range and [`EDGE_ID_BASE`].
const TENANT_SHIFT: u32 = 54;

#[inline]
fn pending_key(app: usize, id: u64) -> u64 {
    ((app as u64) << TENANT_SHIFT) | id
}

/// Reserved poller token for a shard's inbox waker.
const WAKER_TOKEN: u64 = u64::MAX;

/// Upper bound on protocol lines served per connection per shard tick;
/// connections with more buffered lines go to the shard's backlog so a
/// pipelining flood cannot starve its shard-mates.
const LINES_PER_TICK: usize = 64;

/// Upper bound on bytes read from one connection per shard tick
/// (level-triggered readiness re-fires for the rest).
const READ_BUDGET: usize = 256 * 1024;

/// Idle poll tick; bounds how stale shutdown/discard-deadline checks
/// can get when no I/O is flowing.
const TICK_MS: i32 = 100;

/// Gateway configuration (networking only — engine construction lives
/// in [`pard_engine_api::EngineBuilder`]).
#[derive(Clone, Debug)]
pub struct GatewayConfig {
    /// Listen address for the request protocol (`port 0` = ephemeral).
    pub addr: String,
    /// Listen address for the `/metrics` endpoint.
    pub metrics_addr: String,
    /// How often the admission snapshot refreshes (wall clock).
    pub edge_refresh: Duration,
    /// Cap on simultaneously admitted-but-unresolved requests; above
    /// it new requests are answered with [`ErrorCode::Overloaded`].
    /// With multiple apps, half the table is guaranteed to tenants in
    /// proportion to their weights and the rest is shared headroom.
    pub max_pending: usize,
    /// Whether the deterministic-replay controls (`at_us` arrival
    /// stamps, `advance_us` / `replay_join` control lines) are
    /// honoured. Replay steers the *shared* virtual clock, so it is a
    /// cooperative testing discipline: any client could fast-forward
    /// time past every other connection's deadlines. Disable on
    /// gateways serving mutually untrusting clients; such requests are
    /// then answered with a `malformed` envelope.
    pub allow_replay: bool,
    /// How often the telemetry sampler publishes an [`EngineFrame`]
    /// (the `/events` stream's cadence, wall clock).
    pub telemetry_period: Duration,
    /// Event-loop shard threads sharing the connection population.
    pub shards: usize,
    /// Online re-planning and brownout control (see [`crate::adaptive`]).
    /// `None` (the default) keeps the floor on the static profile —
    /// byte-identical to the pre-adaptive gateway.
    pub adaptive: Option<AdaptiveConfig>,
    /// Deterministic connection-chaos injection for robustness tests;
    /// `None` disables every fault.
    pub chaos: Option<ChaosConfig>,
    /// Engine-pump watchdog: a pump call exceeding this wall-clock
    /// budget marks its app unhealthy (in-flight requests are answered
    /// `shutting_down`, new ones refused). Pump *panics* always trip
    /// the watchdog regardless of this setting. `None` disables the
    /// stall check only.
    pub pump_stall: Option<Duration>,
}

impl Default for GatewayConfig {
    fn default() -> GatewayConfig {
        GatewayConfig {
            addr: "127.0.0.1:7311".into(),
            metrics_addr: "127.0.0.1:7312".into(),
            edge_refresh: Duration::from_millis(10),
            max_pending: 8192,
            allow_replay: true,
            telemetry_period: Duration::from_millis(100),
            shards: 4,
            adaptive: None,
            chaos: None,
            pump_stall: None,
        }
    }
}

/// Deterministic connection-fault injection, counter-based (no RNG) so
/// a replayed scenario hits the same faults at the same protocol
/// positions every run. All faults are at the socket layer; the
/// admission and engine state machines above them are untouched, which
/// is exactly what the robustness tests pin down.
#[derive(Clone, Copy, Debug)]
pub struct ChaosConfig {
    /// Cap on bytes written per flush call — forces partial writes and
    /// cross-tick `WANT_WRITE` resumes.
    pub max_write_chunk: Option<usize>,
    /// Skip every Nth read tick per connection (a read stall: the
    /// level-triggered poller re-delivers the readiness, so the bytes
    /// arrive one tick late).
    pub read_stall_every: Option<u64>,
    /// After every Nth served protocol line per connection, fail the
    /// connection's writes (a mid-request reset: the reply is computed
    /// but never delivered; the sweep closes the socket).
    pub reset_every: Option<u64>,
}

/// Per-app edge rate limit: a token bucket refilled on the app
/// engine's clock (virtual on the simulator — deterministic limits
/// under replay; wall-backed on live engines).
#[derive(Clone, Copy, Debug)]
pub struct RateLimit {
    /// Sustained admission rate, requests per (engine) second.
    pub rate_per_sec: f64,
    /// Burst allowance, requests.
    pub burst: f64,
}

/// One app served by the gateway: its engine plus edge policy.
pub struct AppConfig {
    /// The engine behind this app; its `spec().name` is the wire
    /// `app` field that routes to it.
    pub engine: Box<dyn EngineHandle>,
    /// Optional per-tenant edge rate limit.
    pub rate_limit: Option<RateLimit>,
    /// Weighted-fair share of the pending table under overload
    /// (relative to the other apps' weights; min 1).
    pub weight: usize,
}

impl AppConfig {
    /// An app with no rate limit and weight 1.
    pub fn new(engine: Box<dyn EngineHandle>) -> AppConfig {
        AppConfig {
            engine,
            rate_limit: None,
            weight: 1,
        }
    }
}

// ---------------------------------------------------------------------------
// Cross-thread plumbing: shard inboxes and reply sinks
// ---------------------------------------------------------------------------

/// One unit of cross-thread work for a shard: a freshly accepted
/// connection, or bytes to queue on one of its connections.
enum ShardMsg {
    /// Hand over a new connection (from the accept thread).
    Conn(TcpStream),
    /// A typed outcome reply for connection `token`; `settles` marks a
    /// reply that retires one owed response (see [`ReplySink`]).
    Reply {
        token: u64,
        response: Response,
        settles: bool,
    },
    /// An already-encoded line (error envelopes — the cold path).
    Line {
        token: u64,
        line: String,
        settles: bool,
    },
}

/// A shard's mailbox: senders push under a short lock and wake the
/// shard's poller only when it declared itself asleep, so the wake
/// syscall stays off the path while the shard is busy. The shard sets
/// `sleeping` *before* its final emptiness check, which closes the
/// lost-wakeup race (a push between check and sleep sees the flag).
struct ShardInbox {
    queue: Mutex<Vec<ShardMsg>>,
    waker: Waker,
    sleeping: AtomicBool,
}

impl ShardInbox {
    fn new() -> io::Result<ShardInbox> {
        Ok(ShardInbox {
            queue: Mutex::new(Vec::new()),
            waker: Waker::new()?,
            sleeping: AtomicBool::new(false),
        })
    }

    fn push(&self, msg: ShardMsg) {
        self.queue.lock().push(msg);
        if self.sleeping.load(Ordering::SeqCst) {
            self.waker.wake();
        }
    }

    /// Moves all queued messages into `into` (appended).
    fn take(&self, into: &mut Vec<ShardMsg>) {
        let mut queue = self.queue.lock();
        into.append(&mut queue);
    }

    fn is_empty(&self) -> bool {
        self.queue.lock().is_empty()
    }
}

/// Where replies for one connection go: its shard's inbox, addressed
/// by connection token. Cloneable and thread-safe, so dispatchers and
/// replay drains reply from any thread.
///
/// `outstanding` counts responses the connection is still owed (filed
/// pending entries plus parked replay requests); a connection whose
/// peer half-closed stays open until the count reaches zero, matching
/// the old writer-thread semantics where pending entries kept the
/// writer alive.
#[derive(Clone)]
struct ReplySink {
    inbox: Arc<ShardInbox>,
    token: u64,
    outstanding: Arc<AtomicI64>,
}

impl ReplySink {
    fn reply(&self, response: Response, settles: bool) {
        self.inbox.push(ShardMsg::Reply {
            token: self.token,
            response,
            settles,
        });
    }

    fn line(&self, line: String, settles: bool) {
        self.inbox.push(ShardMsg::Line {
            token: self.token,
            line,
            settles,
        });
    }
}

struct PendingEntry {
    sink: ReplySink,
    seq: Option<u64>,
}

// ---------------------------------------------------------------------------
// Pump signalling (unchanged from the thread-per-connection gateway)
// ---------------------------------------------------------------------------

/// Wakes the pump thread the moment a submit gives it work, so stepped
/// engines resolve requests at notify latency instead of on the next
/// idle-sleep tick.
///
/// The fast path is one `armed` load: while the pump is actively
/// working (or the engine is live and never pumps), submitters skip
/// the signal mutex entirely. The generation counter closes the lost-
/// wakeup race: the pump reads the generation *before* its final
/// empty-handed `pump()`, and [`PumpSignal::wait_after`] refuses to
/// sleep if any notify moved the generation since — a submit that
/// landed between the check and the wait is therefore never slept
/// through (the engine-mutex ordering makes the submitter's `armed`
/// load observe the pump's store).
struct PumpSignal {
    generation: Mutex<u64>,
    cv: Condvar,
    armed: AtomicBool,
}

impl PumpSignal {
    fn new() -> PumpSignal {
        PumpSignal {
            generation: Mutex::new(0),
            cv: Condvar::new(),
            armed: AtomicBool::new(false),
        }
    }

    /// Declares intent to sleep; returns the generation to hand to
    /// [`PumpSignal::wait_after`]. Call *before* the final work check.
    fn arm(&self) -> u64 {
        self.armed.store(true, Ordering::SeqCst);
        *self.generation.lock()
    }

    /// Withdraws the intent (work was found after all).
    fn disarm(&self) {
        self.armed.store(false, Ordering::SeqCst);
    }

    /// Sleeps until a notify or `timeout` — unless the generation
    /// already moved past `observed`, in which case a submit raced the
    /// final check and the pump should run again immediately.
    fn wait_after(&self, observed: u64, timeout: Duration) {
        let mut generation = self.generation.lock();
        if *generation == observed {
            self.cv.wait_for(&mut generation, timeout);
        }
        drop(generation);
        self.disarm();
    }

    /// Wakes an armed pump; a no-op (one atomic load) while the pump
    /// is busy.
    fn notify(&self) {
        if !self.armed.load(Ordering::SeqCst) {
            return;
        }
        *self.generation.lock() += 1;
        self.cv.notify_all();
    }

    /// Unconditional wake (shutdown).
    fn force_notify(&self) {
        *self.generation.lock() += 1;
        self.cv.notify_all();
    }
}

// ---------------------------------------------------------------------------
// Per-app state and the shared core
// ---------------------------------------------------------------------------

/// Everything one app's request handling needs.
struct AppState {
    /// Position in [`Core::apps`]; doubles as the pending-table tenant
    /// index and the pending-key namespace.
    index: usize,
    /// The wire `app` field that routes here (`engine.spec().name`).
    name: String,
    engine: Box<dyn EngineHandle>,
    counters: Arc<ServingCounters>,
    module_drops: Arc<ModuleDropCounters>,
    /// The epoch-published admission snapshot (see the module docs).
    snapshot: EdgePublisher,
    pump_signal: PumpSignal,
    /// The pipeline's entry module (static).
    source: usize,
    /// Downstream paths from the entry module to the sink (static) —
    /// the admission estimate charges the critical one, so parallel
    /// DAG branches are not double-counted.
    paths: Vec<Vec<usize>>,
    /// Cached [`EngineHandle::stepped`]: live engines never need the
    /// pump, so per-request submit paths must not touch the pump
    /// signal for them at all.
    stepped: bool,
    /// The engine's flight recorder ([`EngineHandle::telemetry`]);
    /// edge admission decisions are recorded into the same ring the
    /// engine writes its lifecycle events to, so `/flightrecord`
    /// serves one time-ordered stream.
    recorder: Option<Arc<FlightRecorder>>,
    /// The `/events` stream's frame bus: the sampler publishes, SSE
    /// subscribers wait. Laggy subscribers skip to the latest frame
    /// and can never block the sampler.
    frames: Arc<FrameBus>,
    /// Rolling RTT window behind `pard_gateway_rtt_us` and the frame
    /// quantiles; completions push, scrapes read.
    rtt: Arc<RttWindow>,
    /// Per-tenant edge rate limiter, refilled on this engine's clock.
    limiter: Option<Mutex<TokenBucket>>,
    /// Online re-planner + brownout controller; `None` keeps the floor
    /// on the static profile. Snapshot rebuilds are already serialized
    /// per app in the common case (one poller, or the replay gate), so
    /// the mutex is uncontended — it exists for the race between the
    /// wall-clock poller and a scheduled-replay rebuild, where fold
    /// order must be serialized for determinism.
    adaptive: Option<Mutex<AdaptiveState>>,
    /// `false` once the engine-pump watchdog tripped: the engine is
    /// wedged or panicked, requests are refused, pending ones flushed.
    healthy: AtomicBool,
    /// Wall-clock millis (since gateway start) when the current pump
    /// call began; `u64::MAX` when no pump call is in flight. The
    /// watchdog reads it from the poller thread.
    pump_entered_ms: AtomicU64,
}

impl AppState {
    /// Builds a fresh snapshot from the engine's current state (the
    /// poller tick, and the scheduled-replay path).
    ///
    /// With the adaptive layer on, this is where the feedback loop
    /// closes: drain the engine's flight-recorder stream, fold it into
    /// the estimator, and compute the floor from *observed* per-module
    /// latencies instead of the static profile. Every floor movement
    /// the fold produced is stamped back into the recorder with the
    /// resulting `L_sub`.
    fn fresh_snapshot(&self) -> EdgeSnapshot {
        let mut state = self.engine.edge_state();
        let adjustments = match (&self.adaptive, &self.recorder) {
            (Some(adaptive), Some(recorder)) => {
                adaptive
                    .lock()
                    .observe_and_adjust(recorder, &mut state, self.source)
            }
            _ => Vec::new(),
        };
        let snapshot = EdgeSnapshot::new(state, self.source, &self.paths);
        if !adjustments.is_empty() {
            if let Some(recorder) = &self.recorder {
                let t_us = self.engine.now().as_micros();
                let sub_us = snapshot.floor().sub_total().as_micros();
                for adj in adjustments {
                    recorder.record(&ObsEvent {
                        t_us,
                        req: 0,
                        kind: ObsKind::FloorAdjust {
                            module: adj.module,
                            cause: adj.cause,
                            observed_us: adj.observed_us,
                            profiled_us: adj.profiled_us,
                            sub_us,
                        },
                    });
                }
            }
        }
        snapshot
    }

    fn is_healthy(&self) -> bool {
        self.healthy.load(Ordering::Acquire)
    }

    /// Records one edge admission decision into the engine's flight
    /// recorder: the Eq. 3 inputs plus the verdict. `reason` is the
    /// drop reason for rejections, `None` for admissions. Costs one
    /// ring write; a no-op for engines without a recorder.
    #[inline]
    fn record_edge_decision(
        &self,
        now: SimTime,
        id: u64,
        trace: &crate::admission::EdgeTrace,
        reason: Option<DropReason>,
    ) {
        if let Some(recorder) = &self.recorder {
            recorder.record(&ObsEvent {
                t_us: now.as_micros(),
                req: id,
                kind: ObsKind::EdgeDecision {
                    lead_us: trace.lead_us,
                    sub_us: trace.sub_us,
                    slack_us: trace.slack_us,
                    reason,
                },
            });
        }
    }

    /// One token-bucket acquire on this app's clock; `true` when no
    /// limit is configured.
    fn admit_rate(&self, now: SimTime) -> bool {
        match &self.limiter {
            Some(limiter) => limiter.lock().try_acquire(now),
            None => true,
        }
    }
}

/// Trips the engine watchdog for one app: stop admitting to it, and
/// answer every in-flight request it owes with `shutting_down` so no
/// client blocks on a reply the dead engine will never complete. The
/// flushed requests were admitted, so they resolve as drops — the
/// `admitted == ok + late + dropped` invariant survives the failure.
/// Idempotent; other apps are untouched.
fn mark_app_unhealthy(core: &Core, app: &AppState, why: &str) {
    if app.healthy.swap(false, Ordering::AcqRel) {
        let app_index = app.index as u64;
        for (_key, entry) in core
            .pending
            .drain_matching(|key| key >> TENANT_SHIFT == app_index)
        {
            app.counters.dropped.incr();
            entry.sink.line(
                Response::error_line(
                    ErrorCode::ShuttingDown,
                    entry.seq,
                    &format!("engine for app {:?} is unavailable ({why})", app.name),
                ),
                true,
            );
        }
    }
}

/// State shared by every serving thread.
struct Core {
    apps: Vec<Arc<AppState>>,
    by_name: HashMap<String, usize>,
    /// The shared pending table; tenant index == app index.
    pending: Arc<PendingMap<PendingEntry, Completion>>,
    /// Edge-rejection id counter, shared across apps so edge ids stay
    /// unique gateway-wide.
    edge_seq: AtomicU64,
    allow_replay: bool,
    /// Stops admitting (requests answered `shutting_down`).
    shutdown: AtomicBool,
    /// Stops the shard event loops entirely (after the drain flush).
    stop_io: AtomicBool,
    /// The multi-connection replay coordinator (see [`ReplayCoordinator`]).
    replay: Mutex<ReplayCoordinator>,
    /// Deterministic connection-fault injection; `None` in production.
    chaos: Option<ChaosConfig>,
    /// Gateway start instant; the pump watchdog's time base.
    epoch: Instant,
}

// ---------------------------------------------------------------------------
// Multi-connection deterministic replay
// ---------------------------------------------------------------------------

/// Orders scheduled requests from `K` cooperating replay connections.
///
/// Each participant's *watermark* is the `at_us` of the last control
/// or scheduled line it sent — its promise that nothing earlier is
/// still coming (arrival schedules are non-decreasing per connection).
/// Scheduled requests park in a heap keyed `(at, party, intra)` and
/// drain strictly below the minimum watermark across all parties, so
/// the admission order — and therefore every admission decision — is a
/// pure function of the schedule, not of socket interleaving. Parked
/// `advance_us` actions drain at-or-below the gate (advancing a clock
/// to a time every future entry is at or past is order-neutral), which
/// is what lets the trailing advances release the tail. A participant
/// that disconnects releases its watermark so the others finish.
struct ReplayCoordinator {
    /// Declared group size; 0 until the first `replay_join`.
    parties: u64,
    /// Per-participant watermarks (`u64::MAX` = departed).
    watermarks: Vec<u64>,
    /// Per-participant arrival counters breaking `at` ties stably.
    intra: Vec<u64>,
    heap: BinaryHeap<Reverse<Parked>>,
}

struct Parked {
    at: u64,
    /// Client-assigned sequence number (`u64::MAX` when absent, and for
    /// clock advances). Party indices are assigned by racy join-arrival
    /// order, so same-`at` entries from different connections would
    /// otherwise order differently run to run; a replaying client that
    /// stamps globally-unique `seq`s gets a schedule-determined order.
    seq: u64,
    party: usize,
    intra: u64,
    action: ParkedAction,
}

enum ParkedAction {
    Advance {
        to_us: u64,
    },
    Request {
        app: usize,
        sink: ReplySink,
        request: Request,
    },
}

impl PartialEq for Parked {
    fn eq(&self, other: &Parked) -> bool {
        (self.at, self.seq, self.party, self.intra)
            == (other.at, other.seq, other.party, other.intra)
    }
}
impl Eq for Parked {}
impl PartialOrd for Parked {
    fn partial_cmp(&self, other: &Parked) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Parked {
    fn cmp(&self, other: &Parked) -> std::cmp::Ordering {
        (self.at, self.seq, self.party, self.intra).cmp(&(
            other.at,
            other.seq,
            other.party,
            other.intra,
        ))
    }
}

impl ReplayCoordinator {
    fn new() -> ReplayCoordinator {
        ReplayCoordinator {
            parties: 0,
            watermarks: Vec::new(),
            intra: Vec::new(),
            heap: BinaryHeap::new(),
        }
    }

    /// Registers one participant; returns its party index.
    fn join(&mut self, parties: u64) -> Result<usize, String> {
        if self.parties == 0 {
            self.parties = parties;
        } else if self.parties != parties {
            return Err(format!(
                "a replay group of {} parties is already declared",
                self.parties
            ));
        }
        if self.watermarks.len() as u64 == self.parties {
            return Err(format!(
                "the replay group of {} parties is already full",
                self.parties
            ));
        }
        self.watermarks.push(0);
        self.intra.push(0);
        Ok(self.watermarks.len() - 1)
    }

    /// All declared parties have joined; nothing drains before this.
    fn complete(&self) -> bool {
        self.parties > 0 && self.watermarks.len() as u64 == self.parties
    }

    /// Raises a participant's watermark (non-decreasing).
    fn raise(&mut self, party: usize, at: u64) {
        if at > self.watermarks[party] {
            self.watermarks[party] = at;
        }
    }

    /// Parks one action under `(at, seq, party, next intra)`.
    fn park(&mut self, party: usize, at: u64, seq: u64, action: ParkedAction) {
        let intra = self.intra[party];
        self.intra[party] += 1;
        self.heap.push(Reverse(Parked {
            at,
            seq,
            party,
            intra,
            action,
        }));
    }

    /// A participant disconnected: release its gate so the rest of the
    /// group can finish (in the success path its trailing advance
    /// already raised the watermark past everything, so this is a
    /// no-op there).
    fn leave(&mut self, party: usize) {
        self.watermarks[party] = u64::MAX;
    }

    /// Removes every parked action (the shutdown flush).
    fn flush(&mut self) -> Vec<Parked> {
        self.heap.drain().map(|r| r.0).collect()
    }
}

/// Drains every parked action that is safely ordered: requests
/// strictly below the minimum watermark, clock advances at or below
/// it. Call with the coordinator lock held.
fn replay_drain_ready(coordinator: &mut ReplayCoordinator, core: &Core) {
    if !coordinator.complete() {
        return;
    }
    let gate = coordinator.watermarks.iter().copied().min().unwrap_or(0);
    loop {
        let pop = match coordinator.heap.peek() {
            Some(Reverse(top)) => match top.action {
                ParkedAction::Advance { .. } => top.at <= gate,
                ParkedAction::Request { .. } => top.at < gate,
            },
            None => false,
        };
        if !pop {
            return;
        }
        let parked = coordinator.heap.pop().expect("peeked").0;
        match parked.action {
            ParkedAction::Advance { to_us } => {
                for app in &core.apps {
                    app.engine.advance_to(SimTime::from_micros(to_us));
                }
            }
            ParkedAction::Request { app, sink, request } => {
                let at = request.at_us.expect("parked requests are scheduled");
                serve_scheduled(core, &core.apps[app], &sink, &request, at, true);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The shard event loop
// ---------------------------------------------------------------------------

/// One connection's state, owned by exactly one shard thread.
struct ConnState {
    stream: TcpStream,
    fd: RawFd,
    /// Unparsed request bytes (partial lines across reads).
    rbuf: Vec<u8>,
    /// Encoded response bytes not yet written; `out_pos` marks how far
    /// the kernel has taken them.
    out: Vec<u8>,
    out_pos: usize,
    /// Whether the poller interest currently includes `WRITABLE`.
    want_write: bool,
    /// A write hard-failed; the connection is swept on the next tick.
    write_failed: bool,
    /// The peer half-closed (EOF); the connection stays open until
    /// every owed response is written.
    read_closed: bool,
    /// Error path: drain inbound bytes until here, then close — a
    /// clean FIN instead of an RST that could clobber the error
    /// response in flight.
    discard_deadline: Option<Instant>,
    /// This connection's membership in the replay group, if joined.
    replay_party: Option<usize>,
    /// Read ticks taken on this connection — the [`ChaosConfig`] read-
    /// stall counter (zero cost when chaos is off).
    chaos_reads: u64,
    /// Protocol lines served on this connection — the [`ChaosConfig`]
    /// reset counter.
    chaos_lines: u64,
    sink: ReplySink,
}

impl ConnState {
    fn flushed(&self) -> bool {
        self.out_pos >= self.out.len()
    }
}

fn shard_loop(core: Arc<Core>, inbox: Arc<ShardInbox>) {
    let Ok(poller) = Poller::new() else { return };
    if poller.add(inbox.waker.fd(), WAKER_TOKEN, READABLE).is_err() {
        return;
    }
    // One cached snapshot reader per app, revalidated per request with
    // a single atomic epoch load.
    let mut snapshots: Vec<SnapshotReader> = core
        .apps
        .iter()
        .map(|app| SnapshotReader::new(&app.snapshot))
        .collect();
    let mut conns: HashMap<u64, ConnState> = HashMap::new();
    let mut next_token = 0u64;
    let mut events = Vec::new();
    let mut msgs: Vec<ShardMsg> = Vec::new();
    // Connections with more buffered complete lines than one tick's
    // budget; served another slice next iteration (with a zero poll
    // timeout, so a flood never adds latency for its shard-mates).
    let mut backlog: Vec<u64> = Vec::new();
    let mut scratch = String::with_capacity(256);
    loop {
        if core.stop_io.load(Ordering::SeqCst) {
            // Final flush: apply every queued reply (the shutdown
            // drain's flushes included), then push remaining bytes out
            // in blocking mode so no client loses an answer.
            inbox.take(&mut msgs);
            for msg in msgs.drain(..) {
                apply_msg(
                    msg,
                    &mut conns,
                    &mut next_token,
                    &poller,
                    &inbox,
                    &mut scratch,
                );
            }
            for (_, conn) in conns.drain() {
                final_flush(conn);
            }
            return;
        }

        events.clear();
        if backlog.is_empty() {
            // Sleep-intent protocol: declare sleep *before* the final
            // emptiness check so a concurrent push either sees the
            // flag (and wakes us) or its message is seen here.
            inbox.sleeping.store(true, Ordering::SeqCst);
            if inbox.is_empty() {
                let _ = poller.wait(&mut events, Some(TICK_MS));
            }
            inbox.sleeping.store(false, Ordering::SeqCst);
        } else {
            let _ = poller.wait(&mut events, Some(0));
        }

        // Cross-thread work: new connections, dispatcher replies.
        inbox.take(&mut msgs);
        for msg in msgs.drain(..) {
            apply_msg(
                msg,
                &mut conns,
                &mut next_token,
                &poller,
                &inbox,
                &mut scratch,
            );
        }

        // Backlogged connections get their next slice of lines.
        if !backlog.is_empty() {
            let tokens = std::mem::take(&mut backlog);
            for token in tokens {
                if let Some(conn) = conns.get_mut(&token) {
                    shard_process_lines(&core, &mut snapshots, conn, &mut backlog);
                }
            }
        }

        for event in &events {
            if event.token == WAKER_TOKEN {
                inbox.waker.drain();
                continue;
            }
            let Some(conn) = conns.get_mut(&event.token) else {
                continue;
            };
            if event.is_readable() {
                shard_read(conn, core.chaos.as_ref());
                shard_process_lines(&core, &mut snapshots, conn, &mut backlog);
            }
            if event.is_writable() {
                shard_flush(conn, &poller, core.chaos.as_ref());
            }
        }

        // Same-tick self-replies: handlers answer through this shard's
        // own inbox; applying them now (instead of after a waker
        // round-trip) gets them into `out` before the flush below.
        inbox.take(&mut msgs);
        for msg in msgs.drain(..) {
            apply_msg(
                msg,
                &mut conns,
                &mut next_token,
                &poller,
                &inbox,
                &mut scratch,
            );
        }

        // Flush dirty connections, then sweep closable ones.
        let now = Instant::now();
        let mut closed: Vec<u64> = Vec::new();
        for (token, conn) in conns.iter_mut() {
            if !conn.write_failed && !conn.flushed() {
                shard_flush(conn, &poller, core.chaos.as_ref());
            }
            if should_close(conn, now) {
                closed.push(*token);
            }
        }
        for token in closed {
            let conn = conns.remove(&token).expect("swept token");
            let _ = poller.delete(conn.fd);
            if let Some(party) = conn.replay_party {
                // A departed participant releases its watermark so the
                // rest of the group can finish.
                let mut coordinator = core.replay.lock();
                coordinator.leave(party);
                replay_drain_ready(&mut coordinator, &core);
            }
        }
    }
}

fn apply_msg(
    msg: ShardMsg,
    conns: &mut HashMap<u64, ConnState>,
    next_token: &mut u64,
    poller: &Poller,
    inbox: &Arc<ShardInbox>,
    scratch: &mut String,
) {
    match msg {
        ShardMsg::Conn(stream) => {
            if stream.set_nonblocking(true).is_err() {
                return;
            }
            let _ = stream.set_nodelay(true);
            let fd = stream.as_raw_fd();
            let token = *next_token;
            *next_token += 1;
            if poller.add(fd, token, READABLE).is_err() {
                return;
            }
            conns.insert(
                token,
                ConnState {
                    stream,
                    fd,
                    rbuf: Vec::new(),
                    out: Vec::new(),
                    out_pos: 0,
                    want_write: false,
                    write_failed: false,
                    read_closed: false,
                    discard_deadline: None,
                    replay_party: None,
                    chaos_reads: 0,
                    chaos_lines: 0,
                    sink: ReplySink {
                        inbox: Arc::clone(inbox),
                        token,
                        outstanding: Arc::new(AtomicI64::new(0)),
                    },
                },
            );
        }
        ShardMsg::Reply {
            token,
            response,
            settles,
        } => {
            let Some(conn) = conns.get_mut(&token) else {
                return; // connection already gone; nobody is owed
            };
            if settles {
                conn.sink.outstanding.fetch_sub(1, Ordering::SeqCst);
            }
            scratch.clear();
            response.encode_into(scratch);
            conn.out.extend_from_slice(scratch.as_bytes());
            conn.out.push(b'\n');
        }
        ShardMsg::Line {
            token,
            line,
            settles,
        } => {
            let Some(conn) = conns.get_mut(&token) else {
                return;
            };
            if settles {
                conn.sink.outstanding.fetch_sub(1, Ordering::SeqCst);
            }
            conn.out.extend_from_slice(line.as_bytes());
            conn.out.push(b'\n');
        }
    }
}

/// Reads whatever the socket has, up to the per-tick budget (level-
/// triggered readiness re-fires for the rest). In discard mode the
/// bytes are dropped — the connection is only being drained for a
/// clean close.
fn shard_read(conn: &mut ConnState, chaos: Option<&ChaosConfig>) {
    if conn.write_failed {
        return;
    }
    if let Some(every) = chaos.and_then(|c| c.read_stall_every) {
        // Injected read stall: skip this readiness tick entirely. The
        // level-triggered poller re-delivers the readiness, so the
        // bytes arrive one tick late — a pure delay, never a loss,
        // which is why stalls must be outcome-preserving under replay.
        conn.chaos_reads += 1;
        if conn.chaos_reads.is_multiple_of(every.max(1)) {
            return;
        }
    }
    let mut tmp = [0u8; 16 * 1024];
    let mut budget = READ_BUDGET;
    loop {
        if budget == 0 {
            return;
        }
        match conn.stream.read(&mut tmp) {
            Ok(0) => {
                conn.read_closed = true;
                return;
            }
            Ok(n) => {
                budget = budget.saturating_sub(n);
                if conn.discard_deadline.is_none() {
                    conn.rbuf.extend_from_slice(&tmp[..n]);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.write_failed = true;
                return;
            }
        }
    }
}

/// Serves up to [`LINES_PER_TICK`] complete lines from the read
/// buffer, enforcing [`MAX_LINE_BYTES`] on complete lines, on
/// newline-free buffered tails, and serving an unterminated final line
/// at EOF (the old reader-thread semantics, exactly).
fn shard_process_lines(
    core: &Core,
    snapshots: &mut [SnapshotReader],
    conn: &mut ConnState,
    backlog: &mut Vec<u64>,
) {
    if conn.write_failed || conn.discard_deadline.is_some() {
        return;
    }
    let mut consumed = 0usize;
    let mut served = 0usize;
    let mut oversize = false;
    while served < LINES_PER_TICK {
        let Some(offset) = conn.rbuf[consumed..].iter().position(|&b| b == b'\n') else {
            break;
        };
        if offset + 1 > MAX_LINE_BYTES {
            oversize = true;
            break;
        }
        let line_end = consumed + offset;
        let mut handled = false;
        {
            let text = String::from_utf8_lossy(&conn.rbuf[consumed..line_end]);
            let trimmed = text.trim();
            if !trimmed.is_empty() {
                handle_line(core, snapshots, &conn.sink, &mut conn.replay_party, trimmed);
                handled = true;
            }
        }
        consumed = line_end + 1;
        served += 1;
        if handled {
            if let Some(every) = core.chaos.as_ref().and_then(|c| c.reset_every) {
                // Injected mid-request reset: the request was fully
                // handled (admitted, counted, possibly submitted), but
                // the connection dies before its reply can be written —
                // the sweep closes the socket, and any completion for
                // it resolves against a gone token. Server-side counter
                // algebra must survive exactly this.
                conn.chaos_lines += 1;
                if conn.chaos_lines.is_multiple_of(every.max(1)) {
                    conn.write_failed = true;
                    break;
                }
            }
        }
    }
    if consumed > 0 {
        conn.rbuf.drain(..consumed);
    }
    if oversize {
        oversized_line(core, conn);
        return;
    }
    if conn.rbuf.contains(&b'\n') {
        backlog.push(conn.sink.token);
    } else if conn.rbuf.len() > MAX_LINE_BYTES {
        // A newline-free stream past the line budget: same answer as an
        // oversized complete line, without buffering without bound.
        oversized_line(core, conn);
    } else if conn.read_closed && !conn.rbuf.is_empty() {
        // EOF with an unterminated final line: serve it trimmed.
        let rbuf = std::mem::take(&mut conn.rbuf);
        let text = String::from_utf8_lossy(&rbuf);
        let trimmed = text.trim();
        if !trimmed.is_empty() {
            handle_line(core, snapshots, &conn.sink, &mut conn.replay_party, trimmed);
        }
    }
}

fn oversized_line(core: &Core, conn: &mut ConnState) {
    let counters = &core.apps[0].counters;
    counters.received.incr();
    counters.protocol_errors.incr();
    conn.sink.line(
        Response::error_line(
            ErrorCode::Malformed,
            None,
            &format!("request line exceeds {MAX_LINE_BYTES} bytes; closing connection"),
        ),
        false,
    );
    // Briefly drain what the client already sent so the close is a
    // clean FIN, not an RST that could clobber the error response.
    conn.discard_deadline = Some(Instant::now() + Duration::from_millis(250));
    conn.rbuf = Vec::new();
}

/// Writes as much of `out` as the socket takes, tracking `WRITABLE`
/// interest only while bytes remain (so an idle socket's permanent
/// write-readiness does not spin the poller).
fn shard_flush(conn: &mut ConnState, poller: &Poller, chaos: Option<&ChaosConfig>) {
    if conn.write_failed {
        return;
    }
    // Injected partial writes: cap each write call and stop after one
    // chunk per flush, forcing the cross-tick `WANT_WRITE` resume path
    // that short-write bugs hide in.
    let chunk = chaos.and_then(|c| c.max_write_chunk);
    while conn.out_pos < conn.out.len() {
        let end = match chunk {
            Some(cap) => (conn.out_pos + cap.max(1)).min(conn.out.len()),
            None => conn.out.len(),
        };
        match conn.stream.write(&conn.out[conn.out_pos..end]) {
            Ok(0) => {
                conn.write_failed = true;
                break;
            }
            Ok(n) => {
                conn.out_pos += n;
                if chunk.is_some() {
                    break;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.write_failed = true;
                break;
            }
        }
    }
    if conn.flushed() {
        conn.out.clear();
        conn.out_pos = 0;
        if conn.want_write {
            conn.want_write = false;
            let _ = poller.modify(conn.fd, conn.sink.token, READABLE);
        }
    } else if !conn.want_write && !conn.write_failed {
        conn.want_write = true;
        let _ = poller.modify(conn.fd, conn.sink.token, READABLE | WRITABLE);
    }
}

fn should_close(conn: &ConnState, now: Instant) -> bool {
    if conn.write_failed {
        return true;
    }
    if let Some(deadline) = conn.discard_deadline {
        // Error path: wait out the drain window (or the peer's EOF),
        // then close once the error response is flushed — with a grace
        // ceiling so an unwritable peer cannot pin the fd forever.
        let drained = conn.read_closed || now >= deadline;
        return drained && (conn.flushed() || now >= deadline + Duration::from_secs(2));
    }
    // Half-closed peers keep their connection until every owed
    // response (pending completions, parked replay requests) is
    // answered and written.
    conn.read_closed
        && conn.flushed()
        && conn.rbuf.is_empty()
        && conn.sink.outstanding.load(Ordering::SeqCst) <= 0
}

/// Shutdown's last act per connection: push any remaining queued bytes
/// in blocking mode (bounded by a write timeout) so the drain flush's
/// answers actually reach their clients.
fn final_flush(conn: ConnState) {
    let ConnState {
        mut stream,
        out,
        out_pos,
        write_failed,
        ..
    } = conn;
    if write_failed || out_pos >= out.len() {
        return;
    }
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
    let _ = stream.write_all(&out[out_pos..]);
}

// ---------------------------------------------------------------------------
// Request handling
// ---------------------------------------------------------------------------

fn counted_error(
    counters: &ServingCounters,
    sink: &ReplySink,
    code: ErrorCode,
    seq: Option<u64>,
    message: &str,
) {
    counters.received.incr();
    counters.protocol_errors.incr();
    sink.line(Response::error_line(code, seq, message), false);
}

fn handle_line(
    core: &Core,
    snapshots: &mut [SnapshotReader],
    sink: &ReplySink,
    replay_party: &mut Option<usize>,
    line: &str,
) {
    let request = match ClientLine::decode(line) {
        // Replay control: steer the stepped clocks (live engines ignore
        // it). Not a request — no response, no serving counters. A
        // replay-group member parks it instead, so clock motion stays
        // ordered against every party's scheduled requests.
        Ok(ClientLine::Advance { to_us }) if core.allow_replay => {
            match *replay_party {
                Some(party) => {
                    let mut coordinator = core.replay.lock();
                    coordinator.raise(party, to_us);
                    coordinator.park(party, to_us, u64::MAX, ParkedAction::Advance { to_us });
                    replay_drain_ready(&mut coordinator, core);
                }
                None => {
                    for app in &core.apps {
                        app.engine.advance_to(SimTime::from_micros(to_us));
                    }
                }
            }
            return;
        }
        // A *refused* control line gets an error response, so it is
        // counted like any other answered protocol error (keeping
        // received = admitted + unadmitted); honored ones above stay
        // invisible to the serving counters because they produce no
        // response at all.
        Ok(ClientLine::Advance { .. }) => {
            counted_error(
                &core.apps[0].counters,
                sink,
                ErrorCode::Malformed,
                None,
                "deterministic replay is disabled on this gateway",
            );
            return;
        }
        Ok(ClientLine::Join { parties }) if core.allow_replay => {
            if replay_party.is_some() {
                counted_error(
                    &core.apps[0].counters,
                    sink,
                    ErrorCode::Malformed,
                    None,
                    "this connection already joined a replay group",
                );
                return;
            }
            let mut coordinator = core.replay.lock();
            match coordinator.join(parties) {
                Ok(party) => {
                    *replay_party = Some(party);
                    // The final join completes the group and may
                    // release entries earlier joiners already parked.
                    replay_drain_ready(&mut coordinator, core);
                }
                Err(message) => {
                    drop(coordinator);
                    counted_error(
                        &core.apps[0].counters,
                        sink,
                        ErrorCode::Malformed,
                        None,
                        &message,
                    );
                }
            }
            return;
        }
        Ok(ClientLine::Join { .. }) => {
            counted_error(
                &core.apps[0].counters,
                sink,
                ErrorCode::Malformed,
                None,
                "deterministic replay is disabled on this gateway",
            );
            return;
        }
        Ok(ClientLine::Request(request)) => request,
        Err(e) => {
            counted_error(
                &core.apps[0].counters,
                sink,
                e.code,
                seq_hint(line),
                &e.message,
            );
            return;
        }
    };

    // Route by the wire `app` field. A routable request's counters
    // belong to its app; unroutable ones land on app 0 (which *is* the
    // single-app gateway's only app, preserving its exact semantics).
    let resolved = core.by_name.get(request.app.as_str()).copied();
    core.apps[resolved.unwrap_or(0)].counters.received.incr();
    if request.at_us.is_some() && !core.allow_replay {
        core.apps[resolved.unwrap_or(0)]
            .counters
            .protocol_errors
            .incr();
        sink.line(
            Response::error_line(
                ErrorCode::Malformed,
                request.seq,
                "deterministic replay (\"at_us\") is disabled on this gateway",
            ),
            false,
        );
        return;
    }
    let Some(app_index) = resolved else {
        core.apps[0].counters.protocol_errors.incr();
        let message = if core.apps.len() == 1 {
            format!(
                "unknown app {:?} (serving {:?})",
                request.app, core.apps[0].name
            )
        } else {
            let served: Vec<&str> = core.apps.iter().map(|a| a.name.as_str()).collect();
            format!("unknown app {:?} (serving {:?})", request.app, served)
        };
        sink.line(
            Response::error_line(ErrorCode::UnknownApp, request.seq, &message),
            false,
        );
        return;
    };
    let app = &core.apps[app_index];
    if core.shutdown.load(Ordering::SeqCst) {
        // `refused`, not `rejected`: this is gateway back-pressure, not
        // a PARD admission decision.
        app.counters.refused.incr();
        sink.line(
            Response::error_line(
                ErrorCode::ShuttingDown,
                request.seq,
                "gateway is shutting down",
            ),
            false,
        );
        return;
    }
    if !app.is_healthy() {
        // The watchdog tripped on this app's engine: refuse rather
        // than submit into a wedged or panicked pipeline. Other apps
        // keep serving.
        app.counters.refused.incr();
        sink.line(
            Response::error_line(
                ErrorCode::ShuttingDown,
                request.seq,
                &format!("engine for app {:?} is unavailable", app.name),
            ),
            false,
        );
        return;
    }
    match (request.at_us, *replay_party) {
        (Some(at), Some(party)) => {
            // A scheduled request from a replay-group member parks; it
            // is served in global arrival order once every party's
            // watermark passes it. Its eventual reply (settles=true)
            // is owed from this moment.
            let mut coordinator = core.replay.lock();
            coordinator.raise(party, at);
            sink.outstanding.fetch_add(1, Ordering::SeqCst);
            coordinator.park(
                party,
                at,
                request.seq.unwrap_or(u64::MAX),
                ParkedAction::Request {
                    app: app_index,
                    sink: sink.clone(),
                    request,
                },
            );
            replay_drain_ready(&mut coordinator, core);
        }
        (Some(at), None) => serve_scheduled(core, app, sink, &request, at, false),
        (None, _) => serve_now(core, &mut snapshots[app_index], app, sink, &request),
    }
}

/// The ordinary hot path: decide against the published snapshot — pure
/// reads on shared immutable data, no lock.
fn serve_now(
    core: &Core,
    reader: &mut SnapshotReader,
    app: &AppState,
    sink: &ReplySink,
    request: &Request,
) {
    let now = app.engine.now();
    if !app.admit_rate(now) {
        app.counters.rate_limited.incr();
        sink.line(
            Response::error_line(
                ErrorCode::RateLimited,
                request.seq,
                &format!("rate limit exceeded for app {:?}", app.name),
            ),
            false,
        );
        return;
    }
    let slo = request
        .slo_ms
        .map(SimDuration::saturating_from_millis)
        .unwrap_or(app.engine.spec().slo);
    let deadline = now.saturating_add(slo);
    let (decision, trace) = reader.current(&app.snapshot).decide_traced(now, deadline);
    finish_decision(
        core, app, sink, request, slo, now, decision, &trace, None, false,
    );
}

/// A scheduled request (deterministic trace replay) first steers the
/// stepped clock to its virtual arrival time; admission — and the rate
/// limiter — then run against a snapshot taken at exactly that
/// instant, so the decision is a pure function of the schedule. Live
/// engines ignore the advance and serve the request on receipt.
fn serve_scheduled(
    core: &Core,
    app: &AppState,
    sink: &ReplySink,
    request: &Request,
    at_us: u64,
    settles: bool,
) {
    if core.shutdown.load(Ordering::SeqCst) || !app.is_healthy() {
        // Parked requests can surface here after the admission-path
        // shutdown and health checks ran; answer them instead of
        // submitting into a draining (or dead) engine.
        app.counters.refused.incr();
        sink.line(
            Response::error_line(
                ErrorCode::ShuttingDown,
                request.seq,
                "gateway is shutting down",
            ),
            settles,
        );
        return;
    }
    app.engine.advance_to(SimTime::from_micros(at_us));
    let now = app.engine.now();
    if !app.admit_rate(now) {
        app.counters.rate_limited.incr();
        sink.line(
            Response::error_line(
                ErrorCode::RateLimited,
                request.seq,
                &format!("rate limit exceeded for app {:?}", app.name),
            ),
            settles,
        );
        return;
    }
    let slo = request
        .slo_ms
        .map(SimDuration::saturating_from_millis)
        .unwrap_or(app.engine.spec().slo);
    let deadline = now.saturating_add(slo);
    let (decision, trace) = app.fresh_snapshot().decide_traced(now, deadline);
    finish_decision(
        core,
        app,
        sink,
        request,
        slo,
        now,
        decision,
        &trace,
        Some(at_us),
        settles,
    );
}

#[allow(clippy::too_many_arguments)]
fn finish_decision(
    core: &Core,
    app: &AppState,
    sink: &ReplySink,
    request: &Request,
    slo: SimDuration,
    now: SimTime,
    decision: Decision,
    trace: &crate::admission::EdgeTrace,
    at_us: Option<u64>,
    settles: bool,
) {
    match decision {
        Decision::Drop(reason) => {
            app.counters.rejected.incr();
            let id = EDGE_ID_BASE + core.edge_seq.fetch_add(1, Ordering::Relaxed);
            app.record_edge_decision(now, id, trace, Some(reason));
            sink.reply(
                Response::dropped(id, request.seq, true, reason.label()),
                settles,
            );
        }
        Decision::Admit => {
            // Reserve capacity before the submit; the entry itself is
            // filed right after, and the shard-level orphan parking
            // closes the race with a completion firing in between (see
            // `crate::pending`). Under multi-app overload the tenant
            // quota can refuse even with shared headroom left — that
            // headroom is another tenant's guarantee.
            if !core.pending.reserve_tenant(app.index) {
                app.counters.refused.incr();
                sink.line(
                    Response::error_line(
                        ErrorCode::Overloaded,
                        request.seq,
                        &format!(
                            "pending-request table is full ({} entries)",
                            core.pending.capacity()
                        ),
                    ),
                    settles,
                );
                return;
            }
            app.counters.admitted.incr();
            let id = app.engine.submit(SubmitSpec {
                slo: Some(slo),
                tag: 0,
                // Scheduled requests keep the replay gate pinned at
                // their arrival; plain requests release it (see
                // [`pard_engine_api::SubmitSpec::at`]).
                at: at_us.map(SimTime::from_micros),
            });
            app.record_edge_decision(now, id, trace, None);
            // Give the pump thread the work immediately — stepped
            // engines only; a live engine resolves work on its own
            // threads and must not pay a per-request signal lock.
            // Scheduled replay skips the wake: the replay connection
            // drives the clock itself.
            if app.stepped && at_us.is_none() {
                app.pump_signal.notify();
            }
            if !settles {
                // The dispatcher's eventual reply settles this owed
                // response; parked requests were counted at park time.
                sink.outstanding.fetch_add(1, Ordering::SeqCst);
            }
            if let Some(completion) = core.pending.insert_tenant(
                pending_key(app.index, id),
                app.index,
                PendingEntry {
                    sink: sink.clone(),
                    seq: request.seq,
                },
            ) {
                // The completion beat the insert; answer it here.
                let response = completion_reply(
                    &completion,
                    request.seq,
                    &app.counters,
                    &app.module_drops,
                    &app.rtt,
                );
                sink.reply(response, true);
            }
        }
    }
}

/// Classifies one completion into its wire reply, bumping the serving
/// counters — shared by the dispatcher (completion found its entry) and
/// the shard thread (completion raced the insert and was parked).
fn completion_reply(
    completion: &Completion,
    seq: Option<u64>,
    counters: &ServingCounters,
    module_drops: &ModuleDropCounters,
    rtt: &RttWindow,
) -> Response {
    let latency_ms = completion
        .latency()
        .map(|d| d.as_millis_f64())
        .unwrap_or(0.0);
    match completion.outcome {
        Outcome::Completed { .. } if completion.within_slo() => {
            counters.completed_ok.incr();
            rtt.push(latency_ms * 1000.0);
            Response::ok(completion.id, seq, latency_ms)
        }
        Outcome::Completed { .. } => {
            counters.completed_late.incr();
            rtt.push(latency_ms * 1000.0);
            Response::violated(completion.id, seq, latency_ms)
        }
        Outcome::Dropped { module, reason, .. } => {
            counters.dropped.incr();
            module_drops.record(module, reason);
            Response::dropped(completion.id, seq, false, reason.label())
        }
        Outcome::InFlight => unreachable!("completions are terminal"),
    }
}

fn dispatcher_loop(
    completions: Receiver<Completion>,
    app_index: usize,
    pending: Arc<PendingMap<PendingEntry, Completion>>,
    app: Arc<AppState>,
) {
    // Ends when the engine (the only sender) shuts down.
    while let Ok(completion) = completions.recv() {
        // An entry means the submit already filed it; otherwise the
        // completion is parked in the shard and the inserting thread
        // claims it (see `crate::pending`). A completion for a request
        // flushed during shutdown parks harmlessly.
        let key = pending_key(app_index, completion.id);
        let Some(entry) = pending.take_or_stash(key, completion) else {
            continue;
        };
        let response = completion_reply(
            &completion,
            entry.seq,
            &app.counters,
            &app.module_drops,
            &app.rtt,
        );
        entry.sink.reply(response, true);
    }
}

fn accept_loop(listener: TcpListener, core: Arc<Core>, inboxes: Vec<Arc<ShardInbox>>) {
    let mut next = 0usize;
    while !core.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                // Round-robin across shards: connection populations stay
                // balanced without any shared accounting.
                inboxes[next % inboxes.len()].push(ShardMsg::Conn(stream));
                next += 1;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => break,
        }
    }
}

// ---------------------------------------------------------------------------
// The gateway lifecycle
// ---------------------------------------------------------------------------

/// A running gateway. Dropping it without calling
/// [`Gateway::shutdown`] leaks the serving threads; tests and binaries
/// should always shut down explicitly to collect the request logs.
pub struct Gateway {
    core: Arc<Core>,
    addr: SocketAddr,
    metrics_addr: SocketAddr,
    service_threads: Vec<JoinHandle<()>>,
    shard_threads: Vec<JoinHandle<()>>,
    inboxes: Vec<Arc<ShardInbox>>,
    dispatchers: Vec<JoinHandle<()>>,
}

impl Gateway {
    /// Starts serving `engine` — any [`EngineHandle`], simulated or
    /// live — over the wire protocol, with PARD admission at the edge.
    pub fn start(engine: Box<dyn EngineHandle>, config: GatewayConfig) -> io::Result<Gateway> {
        Gateway::start_multi(vec![AppConfig::new(engine)], config)
    }

    /// Starts serving several apps behind one listener; each wire
    /// request routes by its `app` field. With more than one app, half
    /// the pending table is guaranteed to tenants in proportion to
    /// their [`AppConfig::weight`]s and the other half is shared
    /// first-come headroom.
    pub fn start_multi(apps: Vec<AppConfig>, config: GatewayConfig) -> io::Result<Gateway> {
        if apps.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "a gateway needs at least one app",
            ));
        }
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let metrics_listener = TcpListener::bind(&config.metrics_addr)?;
        metrics_listener.set_nonblocking(true)?;
        let metrics_addr = metrics_listener.local_addr()?;

        let guaranteed = if apps.len() == 1 {
            // The legacy single-tenant table: no guarantees, pure
            // shared capacity — bit-identical to the old gateway.
            vec![0]
        } else {
            let total: usize = apps.iter().map(|a| a.weight.max(1)).sum();
            apps.iter()
                .map(|a| config.max_pending * a.weight.max(1) / (2 * total))
                .collect()
        };
        let pending: Arc<PendingMap<PendingEntry, Completion>> =
            Arc::new(PendingMap::with_tenants(config.max_pending, guaranteed));

        let mut states = Vec::with_capacity(apps.len());
        let mut by_name = HashMap::new();
        let mut completion_rxs = Vec::new();
        for (index, app) in apps.into_iter().enumerate() {
            let AppConfig {
                engine,
                rate_limit,
                weight: _,
            } = app;
            let (completion_tx, completion_rx) = mpsc::channel();
            engine.set_completion_sink(completion_tx);
            completion_rxs.push(completion_rx);
            let source = engine.spec().source();
            let paths = pard_pipeline::graph::downstream_paths(engine.spec(), source);
            let recorder = engine.telemetry();
            let name = engine.spec().name.clone();
            if by_name.insert(name.clone(), index).is_some() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("two apps registered under the name {name:?}"),
                ));
            }
            let limiter = rate_limit.map(|limit| {
                Mutex::new(TokenBucket::new(
                    limit.rate_per_sec,
                    limit.burst,
                    engine.now(),
                ))
            });
            states.push(Arc::new(AppState {
                index,
                name,
                snapshot: EdgePublisher::new(EdgeSnapshot::new(
                    engine.edge_state(),
                    source,
                    &paths,
                )),
                counters: Arc::new(ServingCounters::new()),
                module_drops: Arc::new(ModuleDropCounters::new(engine.spec().modules.len())),
                pump_signal: PumpSignal::new(),
                source,
                paths,
                stepped: engine.stepped(),
                recorder,
                frames: Arc::new(FrameBus::new()),
                rtt: Arc::new(RttWindow::new(DEFAULT_RTT_SAMPLES)),
                limiter,
                adaptive: config
                    .adaptive
                    .map(|cfg| Mutex::new(AdaptiveState::new(cfg))),
                healthy: AtomicBool::new(true),
                pump_entered_ms: AtomicU64::new(u64::MAX),
                engine,
            }));
        }

        let core = Arc::new(Core {
            apps: states,
            by_name,
            pending: Arc::clone(&pending),
            edge_seq: AtomicU64::new(0),
            allow_replay: config.allow_replay,
            shutdown: AtomicBool::new(false),
            stop_io: AtomicBool::new(false),
            replay: Mutex::new(ReplayCoordinator::new()),
            chaos: config.chaos,
            epoch: Instant::now(),
        });

        // Shard event loops: the connection fabric.
        let mut inboxes = Vec::new();
        let mut shard_threads = Vec::new();
        for _ in 0..config.shards.max(1) {
            let inbox = Arc::new(ShardInbox::new()?);
            let core = Arc::clone(&core);
            let thread_inbox = Arc::clone(&inbox);
            shard_threads.push(std::thread::spawn(move || shard_loop(core, thread_inbox)));
            inboxes.push(inbox);
        }

        // Dispatchers: engine completions → shard inboxes, one per app.
        // They hold only the pending map and the app state, so they
        // outlive the shard threads and keep routing completions while
        // shutdown drains the engines.
        let mut dispatchers = Vec::new();
        for (index, completion_rx) in completion_rxs.into_iter().enumerate() {
            let app = Arc::clone(&core.apps[index]);
            let pending = Arc::clone(&pending);
            dispatchers.push(std::thread::spawn(move || {
                dispatcher_loop(completion_rx, index, pending, app)
            }));
        }

        let mut service_threads = Vec::new();

        // Edge-state poller: publishes every app's admission snapshot.
        // Doubles as the pump watchdog's monitor — it already wakes
        // every `edge_refresh` and holds the core, and it must skip
        // unhealthy apps anyway (a panicked engine's `edge_state` can
        // no longer be trusted not to panic too).
        {
            let core = Arc::clone(&core);
            let refresh = config.edge_refresh;
            let pump_stall = config.pump_stall;
            service_threads.push(std::thread::spawn(move || {
                while !core.shutdown.load(Ordering::SeqCst) {
                    for app in &core.apps {
                        if !app.is_healthy() {
                            continue;
                        }
                        if let Some(stall) = pump_stall {
                            let entered = app.pump_entered_ms.load(Ordering::Acquire);
                            let now_ms = core.epoch.elapsed().as_millis() as u64;
                            if entered != u64::MAX
                                && now_ms.saturating_sub(entered) > stall.as_millis() as u64
                            {
                                mark_app_unhealthy(&core, app, "engine pump stalled");
                                continue;
                            }
                        }
                        app.snapshot.publish(app.fresh_snapshot());
                    }
                    std::thread::sleep(refresh);
                }
            }));
        }

        // One pump per app: advances engines with a stepped virtual
        // clock (the simulator). Self-driving engines return false and
        // the thread idles on the signal; submits notify it so work is
        // picked up at wake latency, not on the next timeout tick.
        //
        // The pump is the one gateway thread that runs arbitrary engine
        // code in a loop, so it carries the watchdog instrumentation: a
        // panic trips the app unhealthy immediately (instead of
        // silently wedging every request the dead pump owed), and the
        // entry stamp lets the poller catch a pump that never returns.
        for app in &core.apps {
            let app = Arc::clone(app);
            let core = Arc::clone(&core);
            service_threads.push(std::thread::spawn(move || {
                while !core.shutdown.load(Ordering::SeqCst) {
                    if !app.is_healthy() {
                        return;
                    }
                    let observed = app.pump_signal.arm();
                    if app.stepped {
                        let now_ms = core.epoch.elapsed().as_millis() as u64;
                        app.pump_entered_ms.store(now_ms, Ordering::Release);
                        let pumped = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            app.engine.pump()
                        }));
                        app.pump_entered_ms.store(u64::MAX, Ordering::Release);
                        match pumped {
                            Ok(true) => {
                                app.pump_signal.disarm();
                                continue;
                            }
                            Ok(false) => {}
                            Err(_) => {
                                mark_app_unhealthy(&core, &app, "engine pump panicked");
                                return;
                            }
                        }
                    }
                    let idle = if app.stepped {
                        Duration::from_millis(1)
                    } else {
                        Duration::from_millis(200)
                    };
                    app.pump_signal.wait_after(observed, idle);
                }
            }));
        }

        // Accept loop.
        {
            let core = Arc::clone(&core);
            let inboxes = inboxes.clone();
            service_threads.push(std::thread::spawn(move || {
                accept_loop(listener, core, inboxes);
            }));
        }

        // Telemetry sampler: periodically folds each app's serving
        // counters, published admission snapshot, and RTT window into
        // an EngineFrame on that app's bus. Off the hot path entirely.
        {
            let core = Arc::clone(&core);
            let period = config.telemetry_period;
            service_threads.push(std::thread::spawn(move || {
                let mut seq = 0u64;
                let mut prev: Vec<_> = core.apps.iter().map(|a| a.counters.snapshot()).collect();
                loop {
                    for (app, prev) in core.apps.iter().zip(prev.iter_mut()) {
                        let (frame, counts) = build_frame(&core, app, seq, prev);
                        *prev = counts;
                        app.frames.publish(frame);
                    }
                    seq += 1;
                    if core.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    std::thread::sleep(period);
                }
            }));
        }

        // Metrics endpoint.
        {
            let core = Arc::clone(&core);
            service_threads.push(std::thread::spawn(move || {
                metrics_loop(metrics_listener, core);
            }));
        }

        Ok(Gateway {
            core,
            addr,
            metrics_addr,
            service_threads,
            shard_threads,
            inboxes,
            dispatchers,
        })
    }

    /// The bound request-protocol address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound `/metrics` address.
    pub fn metrics_addr(&self) -> SocketAddr {
        self.metrics_addr
    }

    /// Snapshot of the first app's serving counters (the only app on a
    /// single-app gateway); see [`Gateway::counters_of`] for the rest.
    pub fn counters(&self) -> pard_metrics::CountersSnapshot {
        self.core.apps[0].counters.snapshot()
    }

    /// Snapshot of one app's serving counters, by wire name.
    pub fn counters_of(&self, app: &str) -> Option<pard_metrics::CountersSnapshot> {
        let index = *self.core.by_name.get(app)?;
        Some(self.core.apps[index].counters.snapshot())
    }

    /// The wire names of every app served, in registration order.
    pub fn app_names(&self) -> Vec<String> {
        self.core.apps.iter().map(|a| a.name.clone()).collect()
    }

    /// Snapshot of the first app's per-module drop counters (where
    /// admitted requests died inside the pipeline, and why).
    pub fn module_drops(&self) -> pard_metrics::ModuleDropsSnapshot {
        self.core.apps[0].module_drops.snapshot()
    }

    /// Admitted-but-unresolved requests currently in the pending table
    /// (the `pard_gateway_pending_requests` gauge), across all apps.
    pub fn pending_len(&self) -> usize {
        self.core.pending.len()
    }

    /// The first app's flight recorder, if its engine records
    /// lifecycle events — the same ring `/flightrecord` serves.
    pub fn recorder(&self) -> Option<Arc<FlightRecorder>> {
        self.core.apps[0].recorder.clone()
    }

    /// One app's flight recorder, by wire name (the ring
    /// `/flightrecord?app=NAME` serves).
    pub fn recorder_of(&self, app: &str) -> Option<Arc<FlightRecorder>> {
        let index = *self.core.by_name.get(app)?;
        self.core.apps[index].recorder.clone()
    }

    /// The first app's telemetry frame bus (the `/events` stream);
    /// in-process consumers can subscribe directly with
    /// [`pard_obs::FrameBus::wait_newer`].
    pub fn frames(&self) -> Arc<FrameBus> {
        Arc::clone(&self.core.apps[0].frames)
    }

    /// Stops accepting, drains in-flight requests (bounded by
    /// `drain_virtual` of virtual time and 30 s of wall time), stops
    /// the engine, and returns its request log. Single-app shorthand
    /// for [`Gateway::shutdown_multi`].
    pub fn shutdown(self, drain_virtual: SimDuration) -> RequestLog {
        self.shutdown_multi(drain_virtual).remove(0)
    }

    /// Shuts every app down and returns their request logs in
    /// registration order.
    pub fn shutdown_multi(self, drain_virtual: SimDuration) -> Vec<RequestLog> {
        let Gateway {
            core,
            addr: _,
            metrics_addr: _,
            service_threads,
            shard_threads,
            inboxes,
            dispatchers,
        } = self;
        core.shutdown.store(true, Ordering::SeqCst);
        // Wake the pump threads out of their idle waits so they observe
        // the flag now rather than on their next timeout tick.
        for app in &core.apps {
            app.pump_signal.force_notify();
        }
        for handle in service_threads {
            let _ = handle.join();
        }
        // Shards answer anything already buffered with `shutting_down`
        // within one tick of the flag; wait that out so no new
        // admissions race the flush below, then give the pipelines a
        // bounded window to resolve what is in flight. Stepped engines
        // no longer have their pump threads, so this loop pumps them
        // directly — and gives up once no engine progresses (when a
        // replay client vanished without its trailing advance, the
        // clock gate is unreachable and waiting longer cannot resolve
        // anything). Live engines resolve work on their own threads, so
        // only the 30 s ceiling applies to them.
        std::thread::sleep(Duration::from_millis(150));
        let all_stepped = core.apps.iter().all(|a| a.stepped);
        let deadline = Instant::now() + Duration::from_secs(30);
        let mut last_progress = Instant::now();
        loop {
            if core.pending.is_empty() || Instant::now() >= deadline {
                break;
            }
            let mut progressed = false;
            for app in &core.apps {
                if app.is_healthy() && app.engine.pump() {
                    progressed = true;
                }
            }
            if progressed {
                last_progress = Instant::now();
            } else if all_stepped && last_progress.elapsed() > Duration::from_millis(500) {
                break;
            } else {
                std::thread::sleep(Duration::from_millis(5));
            }
        }
        // Parked replay requests never reached admission; answer them
        // as refused so no client hangs on an owed response.
        for parked in core.replay.lock().flush() {
            if let ParkedAction::Request { app, sink, request } = parked.action {
                core.apps[app].counters.refused.incr();
                sink.line(
                    Response::error_line(
                        ErrorCode::ShuttingDown,
                        request.seq,
                        "gateway is shutting down",
                    ),
                    true,
                );
            }
        }
        // Flush whatever is still pending *before* stopping the shards:
        // the shard loops' final pass writes these answers out, so no
        // client hangs and the admitted = ok + late + dropped invariant
        // survives shutdown.
        const ID_MASK: u64 = (1u64 << TENANT_SHIFT) - 1;
        for (key, entry) in core.pending.drain_entries() {
            let app = (key >> TENANT_SHIFT) as usize;
            let id = key & ID_MASK;
            core.apps[app].counters.dropped.incr();
            entry
                .sink
                .reply(Response::dropped(id, entry.seq, false, "shutdown"), true);
        }
        core.stop_io.store(true, Ordering::SeqCst);
        for inbox in &inboxes {
            inbox.waker.wake();
        }
        for handle in shard_threads {
            let _ = handle.join();
        }
        // Draining stops each engine and drops its completion sender,
        // which is what lets its dispatcher exit.
        let logs: Vec<RequestLog> = core
            .apps
            .iter()
            .map(|app| {
                // A watchdog-tripped engine may panic again in drain;
                // its log is forfeit, the other apps' logs are not.
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    app.engine.drain(drain_virtual)
                }))
                .unwrap_or_default()
            })
            .collect();
        for handle in dispatchers {
            let _ = handle.join();
        }
        logs
    }
}

// ---------------------------------------------------------------------------
// Telemetry and the observability endpoints
// ---------------------------------------------------------------------------

/// One telemetry sample for one app: the cumulative serving counters
/// plus window rates differenced against `prev`, the published
/// admission snapshot's queue state and floor, the app's pending-table
/// share, the summed per-reason drop counters, and the rolling RTT
/// quantiles. Returns the counter snapshot it used so the sampler
/// differences the next frame against exactly what this one reported.
fn build_frame(
    core: &Core,
    app: &AppState,
    seq: u64,
    prev: &pard_metrics::CountersSnapshot,
) -> (EngineFrame, pard_metrics::CountersSnapshot) {
    let counts = app.counters.snapshot();
    let snapshot = app.snapshot.load();
    let state = snapshot.state();
    let floor = snapshot.floor();
    let module_drops = app.module_drops.snapshot();
    let mut drops_by_reason = vec![0u64; DropReason::ALL.len()];
    for module in &module_drops.counts {
        for (total, n) in drops_by_reason.iter_mut().zip(module) {
            *total += n;
        }
    }
    let rates = window_rates(prev, &counts);
    let [p50, p95, p99] = app.rtt.quantiles();
    let frame = EngineFrame {
        seq,
        t_us: app.engine.now().as_micros(),
        queues: state.queue_depths.clone(),
        workers: state.workers.clone(),
        pending: core.pending.tenant_len(app.index),
        floor_lead_us: floor.lead().as_micros(),
        floor_sub_us: floor.sub_total().as_micros(),
        received: counts.received,
        admitted: counts.admitted,
        rejected: counts.rejected,
        refused: counts.refused,
        completed_ok: counts.completed_ok,
        completed_late: counts.completed_late,
        dropped: counts.dropped,
        drops_by_reason,
        window_goodput: rates.goodput,
        window_violation: rates.violation,
        window_drop: rates.drop,
        rtt_p50_us: p50,
        rtt_p95_us: p95,
        rtt_p99_us: p99,
    };
    (frame, counts)
}

fn metrics_loop(listener: TcpListener, core: Arc<Core>) {
    // Each accepted connection gets its own thread: an `/events`
    // subscriber holds its connection open indefinitely and must not
    // block `/metrics` scrapes behind it.
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    while !core.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let core = Arc::clone(&core);
                conns.retain(|h| !h.is_finished());
                conns.push(std::thread::spawn(move || {
                    let _ = serve_http(stream, &core);
                }));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
    // Streaming handlers observe the shutdown flag within one wait
    // timeout; one-shot handlers are already gone or about to be.
    for handle in conns {
        let _ = handle.join();
    }
}

/// Minimal HTTP/1.x router for the observability listener: parse the
/// request line, drain the header block, dispatch on the path — one
/// request per connection. A malformed request line gets `400`, a
/// non-GET method `405`, an unknown path `404`. On a multi-app gateway
/// `/events` and `/flightrecord` take `?app=NAME` (default: the first
/// registered app).
fn serve_http(stream: TcpStream, core: &Core) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut line = String::new();
    if reader.read_line(&mut line).is_err() || line.trim().is_empty() {
        return Ok(()); // client vanished before sending a request line
    }
    // Drain the header block so the close after a one-shot response is
    // a clean FIN — a client still mid-send would otherwise see an RST
    // clobber the response in flight. Bounded by the read timeout.
    loop {
        let mut header = String::new();
        match reader.read_line(&mut header) {
            Ok(n) if n > 0 && header != "\r\n" && header != "\n" => continue,
            _ => break,
        }
    }
    let mut stream = stream;
    let Some((method, target)) = parse_request_line(&line) else {
        return respond(
            &mut stream,
            "400 Bad Request",
            "text/plain",
            "malformed request line\n",
        );
    };
    if method != "GET" {
        return respond(
            &mut stream,
            "405 Method Not Allowed",
            "text/plain",
            "only GET is supported\n",
        );
    }
    let (path, query) = match target.split_once('?') {
        Some((path, query)) => (path, Some(query)),
        None => (target, None),
    };
    match path {
        "/metrics" => respond(
            &mut stream,
            "200 OK",
            "text/plain; version=0.0.4",
            &render_metrics(core),
        ),
        "/events" => match query_app(core, query) {
            Some(app) => serve_events(&mut stream, core, app),
            None => respond_unknown_app(&mut stream, core),
        },
        "/flightrecord" => match query_app(core, query) {
            Some(app) => serve_flightrecord(&mut stream, app, query),
            None => respond_unknown_app(&mut stream, core),
        },
        _ => respond(
            &mut stream,
            "404 Not Found",
            "text/plain",
            "unknown path; try /metrics, /events, or /flightrecord\n",
        ),
    }
}

/// Splits a `METHOD SP TARGET SP HTTP/x.y` request line; `None` when
/// the line does not have that shape.
fn parse_request_line(line: &str) -> Option<(&str, &str)> {
    let mut parts = line.trim_end().split(' ');
    let method = parts.next()?;
    let target = parts.next()?;
    let version = parts.next()?;
    if method.is_empty()
        || !target.starts_with('/')
        || !version.starts_with("HTTP/")
        || parts.next().is_some()
    {
        return None;
    }
    Some((method, target))
}

/// First value for `key` in a raw query string.
fn query_param<'q>(query: Option<&'q str>, key: &str) -> Option<&'q str> {
    query.into_iter().flat_map(|q| q.split('&')).find_map(|kv| {
        kv.split_once('=')
            .filter(|(k, _)| *k == key)
            .map(|(_, v)| v)
    })
}

/// Resolves the `?app=NAME` selector; no selector means the first
/// registered app, an unknown name means `None` (a 404).
fn query_app<'a>(core: &'a Core, query: Option<&str>) -> Option<&'a Arc<AppState>> {
    match query_param(query, "app") {
        Some(name) => core.by_name.get(name).map(|&index| &core.apps[index]),
        None => core.apps.first(),
    }
}

fn respond_unknown_app(stream: &mut TcpStream, core: &Core) -> io::Result<()> {
    let served: Vec<&str> = core.apps.iter().map(|a| a.name.as_str()).collect();
    respond(
        stream,
        "404 Not Found",
        "text/plain",
        &format!("unknown app (serving {served:?})\n"),
    )
}

fn respond(stream: &mut TcpStream, status: &str, content_type: &str, body: &str) -> io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    )
}

/// `GET /events`: streams telemetry frames as server-sent events, one
/// `data:` line of JSON per frame. The subscriber always receives the
/// *latest* frame — a laggy consumer skips intermediate frames rather
/// than backpressuring the sampler — and the stream ends at shutdown
/// or when the client disconnects.
fn serve_events(stream: &mut TcpStream, core: &Core, app: &AppState) -> io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 200 OK\r\nContent-Type: text/event-stream\r\nCache-Control: no-cache\r\nConnection: close\r\n\r\n"
    )?;
    let mut seen = 0u64;
    while !core.shutdown.load(Ordering::SeqCst) {
        // The timeout exists only to re-check the shutdown flag.
        let Some((epoch, frame)) = app.frames.wait_newer(seen, Duration::from_millis(250)) else {
            continue;
        };
        seen = epoch;
        write!(stream, "data: {}\n\n", frame.to_json_line())?;
    }
    Ok(())
}

/// `GET /flightrecord[?last_us=N]`: dumps the app engine's flight-
/// recorder ring as JSONL, oldest event first — the whole retained
/// window, or only events within `N` microseconds of the newest one.
fn serve_flightrecord(
    stream: &mut TcpStream,
    app: &AppState,
    query: Option<&str>,
) -> io::Result<()> {
    let last_us = match query_param(query, "last_us") {
        Some(raw) => match raw.parse::<u64>() {
            Ok(n) => Some(n),
            Err(_) => {
                return respond(
                    stream,
                    "400 Bad Request",
                    "text/plain",
                    "last_us must be an unsigned integer of microseconds\n",
                )
            }
        },
        None => None,
    };
    let Some(recorder) = &app.recorder else {
        return respond(
            stream,
            "404 Not Found",
            "text/plain",
            "the engine behind this app exposes no flight recorder\n",
        );
    };
    let events = match last_us {
        Some(n) => recorder.dump_last_us(n),
        None => recorder.dump(),
    };
    let mut body = String::with_capacity(events.len() * 96 + 1);
    for event in &events {
        body.push_str(&event.to_json_line());
        body.push('\n');
    }
    respond(stream, "200 OK", "application/x-ndjson", &body)
}

/// Renders the Prometheus text exposition: the serving counters, the
/// per-module drop series, plus live queue-depth / goodput gauges.
pub fn render_metrics_text(
    snapshot: pard_metrics::CountersSnapshot,
    module_drops: &pard_metrics::ModuleDropsSnapshot,
    state: &pard_engine_api::EdgeState,
    pending: usize,
) -> String {
    let mut body = snapshot.to_prometheus("pard_gateway");
    body.push_str(&module_drops.to_prometheus("pard_gateway"));
    body.push_str("# TYPE pard_gateway_queue_depth gauge\n");
    for (module, depth) in state.queue_depths.iter().enumerate() {
        body.push_str(&format!(
            "pard_gateway_queue_depth{{module=\"{module}\"}} {depth}\n"
        ));
    }
    body.push_str(&format!(
        "# TYPE pard_gateway_pending_requests gauge\npard_gateway_pending_requests {pending}\n"
    ));
    body.push_str(&format!(
        "# TYPE pard_gateway_goodput_fraction gauge\npard_gateway_goodput_fraction {:.6}\n",
        snapshot.goodput_fraction()
    ));
    body.push_str(&format!(
        "# TYPE pard_gateway_drop_fraction gauge\npard_gateway_drop_fraction {:.6}\n",
        snapshot.drop_fraction()
    ));
    body
}

/// The full `/metrics` body. A single-app gateway's exposition starts
/// with the exact pre-multi-tenant body (the back-compat contract CI
/// greps); a multi-app gateway starts with the same families summed
/// across apps. Either way the per-app `{app="..."}` series follow.
fn render_metrics(core: &Core) -> String {
    let mut body = if core.apps.len() == 1 {
        let app = &core.apps[0];
        // The published snapshot is shared immutable data: rendering
        // reads it through the same `Arc` the admission path uses
        // instead of cloning the whole `EdgeState` per scrape.
        let snapshot = app.snapshot.load();
        let mut body = render_metrics_text(
            app.counters.snapshot(),
            &app.module_drops.snapshot(),
            snapshot.state(),
            core.pending.len(),
        );
        body.push_str(&crate::telemetry::render_rtt_lines(
            "pard_gateway",
            app.rtt.quantiles(),
        ));
        body
    } else {
        let mut total = pard_metrics::CountersSnapshot::default();
        for app in &core.apps {
            let s = app.counters.snapshot();
            total.received += s.received;
            total.admitted += s.admitted;
            total.rejected += s.rejected;
            total.completed_ok += s.completed_ok;
            total.completed_late += s.completed_late;
            total.dropped += s.dropped;
            total.refused += s.refused;
            total.rate_limited += s.rate_limited;
            total.protocol_errors += s.protocol_errors;
        }
        let mut body = total.to_prometheus("pard_gateway");
        body.push_str(&format!(
            "# TYPE pard_gateway_pending_requests gauge\npard_gateway_pending_requests {}\n",
            core.pending.len()
        ));
        body.push_str(&format!(
            "# TYPE pard_gateway_goodput_fraction gauge\npard_gateway_goodput_fraction {:.6}\n",
            total.goodput_fraction()
        ));
        body.push_str(&format!(
            "# TYPE pard_gateway_drop_fraction gauge\npard_gateway_drop_fraction {:.6}\n",
            total.drop_fraction()
        ));
        body
    };
    body.push_str(&render_app_series(core));
    body
}

/// Per-app labeled series: every serving-counter family as
/// `pard_gateway_app_<family>_total{app="..."}`, plus per-app pending
/// and queue-depth gauges. App names come from the engine spec and are
/// emitted verbatim (specs use identifier-like names).
fn render_app_series(core: &Core) -> String {
    type Pick = fn(&pard_metrics::CountersSnapshot) -> u64;
    const FAMILIES: [(&str, Pick); 9] = [
        ("received", |s| s.received),
        ("admitted", |s| s.admitted),
        ("rejected", |s| s.rejected),
        ("completed_ok", |s| s.completed_ok),
        ("completed_late", |s| s.completed_late),
        ("dropped", |s| s.dropped),
        ("refused", |s| s.refused),
        ("rate_limited", |s| s.rate_limited),
        ("protocol_errors", |s| s.protocol_errors),
    ];
    let snapshots: Vec<_> = core.apps.iter().map(|a| a.counters.snapshot()).collect();
    let mut body = String::new();
    for (family, pick) in FAMILIES {
        body.push_str(&format!("# TYPE pard_gateway_app_{family}_total counter\n"));
        for (app, snapshot) in core.apps.iter().zip(&snapshots) {
            body.push_str(&format!(
                "pard_gateway_app_{family}_total{{app=\"{}\"}} {}\n",
                app.name,
                pick(snapshot)
            ));
        }
    }
    body.push_str("# TYPE pard_gateway_app_pending_requests gauge\n");
    for app in &core.apps {
        body.push_str(&format!(
            "pard_gateway_app_pending_requests{{app=\"{}\"}} {}\n",
            app.name,
            core.pending.tenant_len(app.index)
        ));
    }
    body.push_str("# TYPE pard_gateway_app_queue_depth gauge\n");
    for app in &core.apps {
        let snapshot = app.snapshot.load();
        for (module, depth) in snapshot.state().queue_depths.iter().enumerate() {
            body.push_str(&format!(
                "pard_gateway_app_queue_depth{{app=\"{}\",module=\"{module}\"}} {depth}\n",
                app.name
            ));
        }
    }
    body.push_str("# TYPE pard_gateway_app_healthy gauge\n");
    for app in &core.apps {
        body.push_str(&format!(
            "pard_gateway_app_healthy{{app=\"{}\"}} {}\n",
            app.name,
            u8::from(app.is_healthy())
        ));
    }
    body
}

#[cfg(test)]
mod tests {
    use super::*;
    use pard_engine_api::EdgeState;
    use pard_sim::SimDuration;

    #[test]
    fn metrics_text_contains_counters_and_gauges() {
        use pard_metrics::{DropReason, ModuleDropCounters};

        let state = EdgeState {
            queue_depths: vec![3, 1],
            workers: vec![2, 2],
            batch_sizes: vec![4, 4],
            exec_ms: vec![40.0, 20.0],
            slo: SimDuration::from_millis(400),
        };
        let snapshot = pard_metrics::CountersSnapshot {
            received: 10,
            admitted: 8,
            rejected: 2,
            completed_ok: 6,
            dropped: 2,
            ..Default::default()
        };
        let module_drops = ModuleDropCounters::new(2);
        module_drops.record(1, DropReason::PredictedViolation);
        module_drops.record(1, DropReason::SiblingDropped);
        let text = render_metrics_text(snapshot, &module_drops.snapshot(), &state, 2);
        assert!(text.contains("pard_gateway_received_total 10"));
        assert!(text.contains("pard_gateway_rejected_total 2"));
        assert!(text.contains("pard_gateway_queue_depth{module=\"0\"} 3"));
        assert!(text.contains("pard_gateway_queue_depth{module=\"1\"} 1"));
        assert!(text.contains("pard_gateway_pending_requests 2"));
        // Per-module drops are labeled series in the same exposition.
        assert!(text.contains("# TYPE pard_gateway_module_dropped_total counter"));
        assert!(
            text.contains("pard_gateway_module_dropped_total{module=\"1\",reason=\"predicted\"} 1")
        );
        assert!(
            text.contains("pard_gateway_module_dropped_total{module=\"1\",reason=\"sibling\"} 1")
        );
        assert!(
            text.contains("pard_gateway_module_dropped_total{module=\"0\",reason=\"predicted\"} 0")
        );
    }

    #[test]
    fn metrics_scrape_format_is_well_formed() {
        // Every line is either a `# TYPE <name> counter|gauge` header or
        // a `<name>[{labels}] <value>` sample whose value parses —
        // the contract an actual Prometheus scraper holds us to.
        let state = EdgeState {
            queue_depths: vec![0, 0],
            workers: vec![1, 1],
            batch_sizes: vec![4, 4],
            exec_ms: vec![40.0, 20.0],
            slo: SimDuration::from_millis(400),
        };
        let drops = pard_metrics::ModuleDropCounters::new(2);
        drops.record(0, pard_metrics::DropReason::WorkerFailed);
        let mut text = render_metrics_text(
            pard_metrics::CountersSnapshot::default(),
            &drops.snapshot(),
            &state,
            0,
        );
        // The full scrape appends the RTT summary family; hold it to
        // the same contract.
        text.push_str(&crate::telemetry::render_rtt_lines(
            "pard_gateway",
            [150.0, 900.0, 1200.5],
        ));
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut parts = rest.split_whitespace();
                let name = parts.next().expect("metric name");
                assert!(name.starts_with("pard_gateway_"), "{line}");
                let kind = parts.next().expect("metric kind");
                assert!(
                    kind == "counter" || kind == "gauge" || kind == "summary",
                    "{line}"
                );
                assert_eq!(parts.next(), None, "{line}");
            } else {
                let (series, value) = line.rsplit_once(' ').expect("sample line");
                assert!(series.starts_with("pard_gateway_"), "{line}");
                if let Some(open) = series.find('{') {
                    assert!(series.ends_with('}'), "{line}");
                    let labels = &series[open + 1..series.len() - 1];
                    for label in labels.split(',') {
                        let (key, val) = label.split_once('=').expect("key=\"value\"");
                        assert!(!key.is_empty(), "{line}");
                        assert!(val.starts_with('"') && val.ends_with('"'), "{line}");
                    }
                }
                assert!(value.parse::<f64>().is_ok(), "{line}");
            }
        }
    }

    #[test]
    fn request_line_parser_accepts_http_and_rejects_noise() {
        assert_eq!(
            parse_request_line("GET /metrics HTTP/1.1\r\n"),
            Some(("GET", "/metrics"))
        );
        assert_eq!(
            parse_request_line("GET /flightrecord?last_us=5000 HTTP/1.0\n"),
            Some(("GET", "/flightrecord?last_us=5000"))
        );
        assert_eq!(
            parse_request_line("POST /events HTTP/1.1\r\n"),
            Some(("POST", "/events"))
        );
        // Shapes that must 400: too few or too many tokens, a target
        // that is not origin-form, a version that is not HTTP.
        assert_eq!(parse_request_line("GET /metrics\r\n"), None);
        assert_eq!(parse_request_line("GET /metrics HTTP/1.1 extra\r\n"), None);
        assert_eq!(parse_request_line("GET metrics HTTP/1.1\r\n"), None);
        assert_eq!(parse_request_line("GET /metrics SPDY/3\r\n"), None);
        assert_eq!(parse_request_line("{\"app\":\"tm\"}\r\n"), None);
    }

    #[test]
    fn edge_ids_round_trip_exactly_through_json_numbers() {
        // Wire ids travel as f64; every edge id must survive the trip.
        for seq in [0u64, 1, 2, 1_000_000_007] {
            let id = EDGE_ID_BASE + seq;
            assert_eq!((id as f64) as u64, id, "seq {seq} lost precision");
        }
        // And the space stays disjoint from any feasible record index.
        assert!(EDGE_ID_BASE > u32::MAX as u64 * 1024);
    }

    #[test]
    fn query_params_resolve_first_match() {
        assert_eq!(query_param(Some("app=tm&last_us=5"), "app"), Some("tm"));
        assert_eq!(query_param(Some("app=tm&last_us=5"), "last_us"), Some("5"));
        assert_eq!(query_param(Some("last_us=5"), "app"), None);
        assert_eq!(query_param(None, "app"), None);
        assert_eq!(query_param(Some("app=a&app=b"), "app"), Some("a"));
    }

    #[test]
    fn pending_keys_namespace_apps_and_preserve_app_zero() {
        // App 0's keys are the raw engine ids (the single-app gateway
        // is bit-identical to the pre-multi-tenant one)...
        assert_eq!(pending_key(0, 42), 42);
        assert_eq!(pending_key(0, EDGE_ID_BASE - 1), EDGE_ID_BASE - 1);
        // ...and distinct apps can never collide, even on equal ids.
        assert_ne!(pending_key(1, 42), pending_key(0, 42));
        assert_ne!(pending_key(1, 42), pending_key(2, 42));
        // Round trip through the shutdown flush's decomposition.
        const ID_MASK: u64 = (1u64 << TENANT_SHIFT) - 1;
        let key = pending_key(3, 123_456);
        assert_eq!((key >> TENANT_SHIFT) as usize, 3);
        assert_eq!(key & ID_MASK, 123_456);
    }

    #[test]
    fn replay_coordinator_orders_across_parties() {
        let mut c = ReplayCoordinator::new();
        let a = c.join(2).expect("first join");
        assert!(!c.complete(), "one of two parties");
        let b = c.join(2).expect("second join");
        assert!(c.complete());
        assert!(c.join(2).is_err(), "third join into a full group");

        // Park out-of-order across parties; the heap orders by (at,
        // seq, party, intra).
        c.park(b, 30, u64::MAX, ParkedAction::Advance { to_us: 30 });
        c.park(a, 10, u64::MAX, ParkedAction::Advance { to_us: 10 });
        c.park(a, 10, u64::MAX, ParkedAction::Advance { to_us: 11 });
        c.raise(a, 10);
        c.raise(b, 30);
        // Gate = min(10, 30) = 10: the two at=10 advances drain (at <=
        // gate), the at=30 one stays.
        let order: Vec<u64> = std::iter::from_fn(|| {
            let ready = matches!(
                c.heap.peek(),
                Some(Reverse(top)) if top.at <= c.watermarks.iter().copied().min().unwrap()
            );
            ready.then(|| {
                let Reverse(p) = c.heap.pop().unwrap();
                match p.action {
                    ParkedAction::Advance { to_us } => to_us,
                    ParkedAction::Request { .. } => unreachable!(),
                }
            })
        })
        .collect();
        assert_eq!(order, vec![10, 11]);

        // A departed party releases the gate entirely.
        c.leave(a);
        assert_eq!(c.watermarks[a], u64::MAX);
        assert_eq!(
            c.watermarks.iter().copied().min().unwrap(),
            30,
            "the remaining party's watermark gates alone"
        );
        assert_eq!(c.flush().len(), 1, "the at=30 advance was still parked");
    }

    #[test]
    fn replay_order_prefers_seq_over_join_order() {
        // Party indices reflect racy join-arrival order; a client that
        // stamps globally-unique seqs gets the same drain order no
        // matter which connection joined first. Here the *higher*
        // party's entry carries the lower seq and must drain first.
        let mut c = ReplayCoordinator::new();
        let a = c.join(2).expect("first join");
        let b = c.join(2).expect("second join");
        c.park(b, 50, 7, ParkedAction::Advance { to_us: 77 });
        c.park(a, 50, 9, ParkedAction::Advance { to_us: 99 });
        let pop = |c: &mut ReplayCoordinator| match c.heap.pop().unwrap().0.action {
            ParkedAction::Advance { to_us } => to_us,
            ParkedAction::Request { .. } => unreachable!(),
        };
        assert_eq!(pop(&mut c), 77, "seq 7 beats the lower party index");
        assert_eq!(pop(&mut c), 99);
    }

    #[test]
    fn replay_group_size_must_match() {
        let mut c = ReplayCoordinator::new();
        c.join(3).expect("declares the group");
        let err = c.join(2).expect_err("mismatched size");
        assert!(err.contains("3 parties"), "{err}");
    }
}
