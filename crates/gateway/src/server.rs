//! The TCP serving front-end.
//!
//! One accept loop, one reader + one writer thread per connection
//! (requests pipeline freely; responses carry the client's `seq` and
//! may return out of order), one dispatcher thread routing
//! [`Completion`]s from the engine back to connections, one edge-state
//! poller refreshing the admission snapshot, one pump thread driving
//! engines whose virtual time does not advance on its own, and one
//! minimal-HTTP metrics listener. The PARD admission check runs in the
//! reader thread at accept time — a hopeless request is answered
//! `dropped` without ever touching a worker queue. Requests carrying a
//! scheduled arrival (`at_us`, deterministic trace replay) first steer
//! a stepped engine's virtual clock to that instant and are admitted
//! against a snapshot taken there, making replayed scenarios
//! bit-reproducible end to end.
//!
//! The gateway is engine-agnostic: it serves any
//! [`pard_engine_api::EngineHandle`], so the same wire protocol and
//! admission path run over the live threaded runtime or the
//! deterministic simulator (see [`pard_engine_api::EngineBuilder`]).

use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;

use pard_core::Decision;
use pard_engine_api::{Completion, EdgeState, EngineHandle, SubmitSpec};
use pard_metrics::{ModuleDropCounters, Outcome, RequestLog, ServingCounters};
use pard_sim::{SimDuration, SimTime};

use crate::admission::edge_decision;
use crate::wire::{seq_hint, ClientLine, ErrorCode, Response};

/// Hard cap on one request line; a connection exceeding it gets an
/// error response and is closed, bounding per-connection memory against
/// newline-free byte streams.
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// Ids for edge-rejected requests live in their own space so they can
/// never collide with engine-assigned ids (record indices, which a
/// process cannot push anywhere near 2^52). The base is kept within
/// f64's exact-integer range because wire ids travel as JSON numbers:
/// 2^52 + seq round-trips exactly for any realistic seq, where 2^63
/// would silently lose its low bits.
pub const EDGE_ID_BASE: u64 = 1 << 52;

/// Gateway configuration (networking only — engine construction lives
/// in [`pard_engine_api::EngineBuilder`]).
#[derive(Clone, Debug)]
pub struct GatewayConfig {
    /// Listen address for the request protocol (`port 0` = ephemeral).
    pub addr: String,
    /// Listen address for the `/metrics` endpoint.
    pub metrics_addr: String,
    /// How often the admission snapshot refreshes (wall clock).
    pub edge_refresh: Duration,
    /// Cap on simultaneously admitted-but-unresolved requests; above
    /// it new requests are answered with [`ErrorCode::Overloaded`].
    pub max_pending: usize,
    /// Whether the deterministic-replay controls (`at_us` arrival
    /// stamps, `advance_us` control lines) are honoured. Replay steers
    /// the *shared* virtual clock, so it is a cooperative testing
    /// discipline: any client could fast-forward time past every other
    /// connection's deadlines. Disable on gateways serving mutually
    /// untrusting clients; such requests are then answered with a
    /// `malformed` envelope.
    pub allow_replay: bool,
}

impl Default for GatewayConfig {
    fn default() -> GatewayConfig {
        GatewayConfig {
            addr: "127.0.0.1:7311".into(),
            metrics_addr: "127.0.0.1:7312".into(),
            edge_refresh: Duration::from_millis(10),
            max_pending: 8192,
            allow_replay: true,
        }
    }
}

struct PendingEntry {
    /// Per-connection channel of already-encoded response lines.
    conn_tx: Sender<String>,
    seq: Option<u64>,
}

/// State shared by reader threads (everything request handling needs).
struct Edge {
    engine: Box<dyn EngineHandle>,
    // `counters`, `module_drops`, and `pending` are separately Arc'd
    // because the dispatcher holds them without holding the Edge (and
    // thus keeps routing completions while shutdown drains the engine).
    counters: Arc<ServingCounters>,
    module_drops: Arc<ModuleDropCounters>,
    pending: Arc<Mutex<HashMap<u64, PendingEntry>>>,
    state: Mutex<EdgeState>,
    shutdown: AtomicBool,
    app_name: String,
    /// The pipeline's entry module (static).
    source: usize,
    /// Downstream paths from the entry module to the sink (static) —
    /// the admission estimate charges the critical one, so parallel
    /// DAG branches are not double-counted.
    paths: Vec<Vec<usize>>,
    edge_seq: AtomicU64,
    max_pending: usize,
    allow_replay: bool,
}

/// A running gateway. Dropping it without calling
/// [`Gateway::shutdown`] leaks the serving threads; tests and binaries
/// should always shut down explicitly to collect the request log.
pub struct Gateway {
    edge: Arc<Edge>,
    addr: SocketAddr,
    metrics_addr: SocketAddr,
    service_threads: Vec<JoinHandle<()>>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
    dispatcher: JoinHandle<()>,
}

impl Gateway {
    /// Starts serving `engine` — any [`EngineHandle`], simulated or
    /// live — over the wire protocol, with PARD admission at the edge.
    pub fn start(engine: Box<dyn EngineHandle>, config: GatewayConfig) -> io::Result<Gateway> {
        let (completion_tx, completion_rx) = mpsc::channel();
        engine.set_completion_sink(completion_tx);

        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let metrics_listener = TcpListener::bind(&config.metrics_addr)?;
        metrics_listener.set_nonblocking(true)?;
        let metrics_addr = metrics_listener.local_addr()?;

        let source = engine.spec().source();
        let edge = Arc::new(Edge {
            state: Mutex::new(engine.edge_state()),
            counters: Arc::new(ServingCounters::new()),
            module_drops: Arc::new(ModuleDropCounters::new(engine.spec().modules.len())),
            pending: Arc::new(Mutex::new(HashMap::new())),
            shutdown: AtomicBool::new(false),
            app_name: engine.spec().name.clone(),
            source,
            paths: pard_pipeline::graph::downstream_paths(engine.spec(), source),
            edge_seq: AtomicU64::new(0),
            max_pending: config.max_pending,
            allow_replay: config.allow_replay,
            engine,
        });

        let conn_threads = Arc::new(Mutex::new(Vec::new()));
        let mut service_threads = Vec::new();

        // Dispatcher: engine completions → per-connection channels.
        // Holds only the pending map and counters, so it can outlive the
        // accept/reader threads and drain the engine during shutdown.
        let dispatcher = {
            let pending = Arc::clone(&edge.pending);
            let counters = Arc::clone(&edge.counters);
            let module_drops = Arc::clone(&edge.module_drops);
            std::thread::spawn(move || {
                dispatcher_loop(completion_rx, pending, counters, module_drops)
            })
        };

        // Edge-state poller: refreshes the admission snapshot.
        {
            let edge = Arc::clone(&edge);
            let refresh = config.edge_refresh;
            service_threads.push(std::thread::spawn(move || {
                while !edge.shutdown.load(Ordering::SeqCst) {
                    *edge.state.lock() = edge.engine.edge_state();
                    std::thread::sleep(refresh);
                }
            }));
        }

        // Pump: advances engines with a stepped virtual clock (the
        // simulator). Self-driving engines return false and this thread
        // idles cheaply.
        {
            let edge = Arc::clone(&edge);
            service_threads.push(std::thread::spawn(move || {
                while !edge.shutdown.load(Ordering::SeqCst) {
                    if !edge.engine.pump() {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                }
            }));
        }

        // Accept loop.
        {
            let edge = Arc::clone(&edge);
            let conn_threads = Arc::clone(&conn_threads);
            service_threads.push(std::thread::spawn(move || {
                accept_loop(listener, edge, conn_threads);
            }));
        }

        // Metrics endpoint.
        {
            let edge = Arc::clone(&edge);
            service_threads.push(std::thread::spawn(move || {
                metrics_loop(metrics_listener, edge);
            }));
        }

        Ok(Gateway {
            edge,
            addr,
            metrics_addr,
            service_threads,
            conn_threads,
            dispatcher,
        })
    }

    /// The bound request-protocol address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound `/metrics` address.
    pub fn metrics_addr(&self) -> SocketAddr {
        self.metrics_addr
    }

    /// Snapshot of the serving counters.
    pub fn counters(&self) -> pard_metrics::CountersSnapshot {
        self.edge.counters.snapshot()
    }

    /// Snapshot of the per-module drop counters (where admitted
    /// requests died inside the pipeline, and why).
    pub fn module_drops(&self) -> pard_metrics::ModuleDropsSnapshot {
        self.edge.module_drops.snapshot()
    }

    /// Stops accepting, drains in-flight requests (bounded by
    /// `drain_virtual` of virtual time and 30 s of wall time), stops
    /// the engine, and returns its request log.
    pub fn shutdown(self, drain_virtual: SimDuration) -> RequestLog {
        self.edge.shutdown.store(true, Ordering::SeqCst);
        for handle in self.service_threads {
            let _ = handle.join();
        }
        // Readers stop within one read-timeout (100 ms) of the flag;
        // wait that out so no new admissions race the flush below, then
        // give the pipeline a bounded window to resolve what's in
        // flight. Stepped engines no longer have their pump thread, so
        // this loop pumps them directly. On a *stepped* engine the loop
        // also gives up once the pump stops progressing: when a replay
        // client vanished without its trailing advance, the clock gate
        // is unreachable and waiting longer cannot resolve anything —
        // the requests are flushed below and the engine drain (which
        // releases the gate) still runs. Live engines resolve work on
        // their own threads, so only the 30 s ceiling applies to them.
        std::thread::sleep(Duration::from_millis(150));
        let stepped = self.edge.engine.stepped();
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        let mut last_progress = std::time::Instant::now();
        loop {
            let pending = self.edge.pending.lock().len();
            if pending == 0 || std::time::Instant::now() >= deadline {
                break;
            }
            if self.edge.engine.pump() {
                last_progress = std::time::Instant::now();
            } else if stepped && last_progress.elapsed() > Duration::from_millis(500) {
                break;
            } else {
                std::thread::sleep(Duration::from_millis(5));
            }
        }
        // Flush whatever is still pending *before* joining connection
        // threads: each connection's writer exits only when every sender
        // to its channel is dropped, and flushed PendingEntry senders are
        // part of that set — flushing after the join would deadlock on
        // any request the pipeline never resolves. Flushed requests are
        // answered and counted as drops, so no client hangs and the
        // admitted = ok + late + dropped invariant survives shutdown.
        for (id, entry) in self.edge.pending.lock().drain() {
            self.edge.counters.dropped.incr();
            let _ = entry
                .conn_tx
                .send(Response::dropped(id, entry.seq, false, "shutdown").encode());
        }
        let conn_threads = std::mem::take(&mut *self.conn_threads.lock());
        for handle in conn_threads {
            let _ = handle.join();
        }
        // Draining stops the engine and drops its completion sender,
        // which is what lets the dispatcher exit.
        let log = self.edge.engine.drain(drain_virtual);
        let _ = self.dispatcher.join();
        log
    }
}

fn dispatcher_loop(
    completions: Receiver<Completion>,
    pending: Arc<Mutex<HashMap<u64, PendingEntry>>>,
    counters: Arc<ServingCounters>,
    module_drops: Arc<ModuleDropCounters>,
) {
    // Ends when the engine (the only sender) shuts down.
    while let Ok(completion) = completions.recv() {
        let entry = pending.lock().remove(&completion.id);
        let Some(entry) = entry else {
            // A request submitted outside the gateway (not expected) or
            // already flushed during shutdown.
            continue;
        };
        let latency_ms = completion
            .latency()
            .map(|d| d.as_millis_f64())
            .unwrap_or(0.0);
        let response = match completion.outcome {
            Outcome::Completed { .. } if completion.within_slo() => {
                counters.completed_ok.incr();
                Response::ok(completion.id, entry.seq, latency_ms)
            }
            Outcome::Completed { .. } => {
                counters.completed_late.incr();
                Response::violated(completion.id, entry.seq, latency_ms)
            }
            Outcome::Dropped { module, reason, .. } => {
                counters.dropped.incr();
                module_drops.record(module, reason);
                Response::dropped(completion.id, entry.seq, false, reason.label())
            }
            Outcome::InFlight => unreachable!("completions are terminal"),
        };
        let _ = entry.conn_tx.send(response.encode());
    }
}

fn accept_loop(
    listener: TcpListener,
    edge: Arc<Edge>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    while !edge.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let edge = Arc::clone(&edge);
                let handle = std::thread::spawn(move || {
                    if let Err(e) = serve_connection(stream, edge) {
                        // Client went away mid-request; routine.
                        let _ = e;
                    }
                });
                let mut threads = conn_threads.lock();
                // Reap finished connections so long-running gateways do
                // not accumulate one handle per connection ever served.
                threads.retain(|h: &JoinHandle<()>| !h.is_finished());
                threads.push(handle);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
}

fn serve_connection(stream: TcpStream, edge: Arc<Edge>) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(100)))?;
    stream.set_nodelay(true)?;
    let write_half = stream.try_clone()?;
    let (conn_tx, conn_rx) = mpsc::channel::<String>();

    // Writer: sole serialiser of this connection's response lines.
    let writer = std::thread::spawn(move || {
        let mut out = io::BufWriter::new(write_half);
        while let Ok(line) = conn_rx.recv() {
            if writeln!(out, "{line}").is_err() || out.flush().is_err() {
                break;
            }
        }
    });

    let mut reader = BufReader::new(stream);
    // Byte buffer + read_until, NOT read_line: read_line's UTF-8 guard
    // truncates partial bytes from the String when a read times out,
    // silently corrupting any request fragmented across the timeout
    // window. read_until keeps partial bytes in the buffer across the
    // Err return, so fragments reassemble on the next pass.
    //
    // Each call reads through a `take` limited to the remaining line
    // budget, so read_until returns (looking like EOF) the moment a
    // line would exceed MAX_LINE_BYTES — even for a client streaming
    // newline-free bytes continuously, which would otherwise keep an
    // unlimited read_until buffering forever without any check running.
    let mut line = Vec::new();
    loop {
        if edge.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let budget = (MAX_LINE_BYTES + 1 - line.len()) as u64;
        match (&mut reader).take(budget).read_until(b'\n', &mut line) {
            Ok(0) if line.is_empty() => break, // clean EOF
            Ok(0) => {
                // EOF with an unterminated final line: serve it, then the
                // next pass hits the clean-EOF arm.
                let text = String::from_utf8_lossy(&line);
                let trimmed = text.trim();
                if !trimmed.is_empty() {
                    handle_request(trimmed, &edge, &conn_tx);
                }
                line.clear();
            }
            Ok(_) => {
                if line.len() > MAX_LINE_BYTES {
                    oversized_line(&edge, &conn_tx);
                    // Briefly drain what the client already sent so the
                    // close is a clean FIN, not an RST that could clobber
                    // the error response in flight.
                    let deadline = std::time::Instant::now() + Duration::from_millis(250);
                    let mut sink = [0u8; 8192];
                    while std::time::Instant::now() < deadline {
                        match reader.read(&mut sink) {
                            Ok(0) | Err(_) => break,
                            Ok(_) => {}
                        }
                    }
                    break;
                }
                if line.ends_with(b"\n") {
                    let text = String::from_utf8_lossy(&line);
                    let trimmed = text.trim();
                    if !trimmed.is_empty() {
                        handle_request(trimmed, &edge, &conn_tx);
                    }
                    line.clear();
                }
                // No trailing newline and within budget: EOF remnant or
                // buffer-boundary read; loop to read the rest.
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                // The timeout exists only to re-check the shutdown flag;
                // partial bytes stay in `line`.
                continue;
            }
            Err(e) => return Err(e),
        }
    }
    drop(conn_tx);
    let _ = writer.join();
    Ok(())
}

fn oversized_line(edge: &Edge, conn_tx: &Sender<String>) {
    edge.counters.received.incr();
    edge.counters.protocol_errors.incr();
    let _ = conn_tx.send(Response::error_line(
        ErrorCode::Malformed,
        None,
        &format!("request line exceeds {MAX_LINE_BYTES} bytes; closing connection"),
    ));
}

fn handle_request(line: &str, edge: &Edge, conn_tx: &Sender<String>) {
    let request = match ClientLine::decode(line) {
        // Replay control: steer a stepped engine's clock (live engines
        // ignore it). Not a request — no response, no serving counters.
        Ok(ClientLine::Advance { to_us }) if edge.allow_replay => {
            edge.engine.advance_to(SimTime::from_micros(to_us));
            return;
        }
        // A *refused* advance line gets an error response, so it is
        // counted like any other answered protocol error (keeping
        // received = admitted + unadmitted); honored ones above stay
        // invisible to the serving counters because they produce no
        // response at all.
        Ok(ClientLine::Advance { .. }) => {
            edge.counters.received.incr();
            edge.counters.protocol_errors.incr();
            let _ = conn_tx.send(Response::error_line(
                ErrorCode::Malformed,
                None,
                "deterministic replay is disabled on this gateway",
            ));
            return;
        }
        Ok(ClientLine::Request(request)) => {
            edge.counters.received.incr();
            if request.at_us.is_some() && !edge.allow_replay {
                edge.counters.protocol_errors.incr();
                let _ = conn_tx.send(Response::error_line(
                    ErrorCode::Malformed,
                    request.seq,
                    "deterministic replay (\"at_us\") is disabled on this gateway",
                ));
                return;
            }
            request
        }
        Err(e) => {
            edge.counters.received.incr();
            edge.counters.protocol_errors.incr();
            let _ = conn_tx.send(Response::error_line(e.code, seq_hint(line), &e.message));
            return;
        }
    };
    if request.app != edge.app_name {
        edge.counters.protocol_errors.incr();
        let _ = conn_tx.send(Response::error_line(
            ErrorCode::UnknownApp,
            request.seq,
            &format!(
                "unknown app {:?} (serving {:?})",
                request.app, edge.app_name
            ),
        ));
        return;
    }
    if edge.shutdown.load(Ordering::SeqCst) {
        // `refused`, not `rejected`: this is gateway back-pressure, not
        // a PARD admission decision.
        edge.counters.refused.incr();
        let _ = conn_tx.send(Response::error_line(
            ErrorCode::ShuttingDown,
            request.seq,
            "gateway is shutting down",
        ));
        return;
    }

    // A scheduled request (deterministic trace replay) first steers the
    // stepped clock to its virtual arrival time; admission then runs
    // against a fresh snapshot taken at exactly that instant, so the
    // decision is a pure function of the schedule — not of how the
    // poller thread's wall-clock refresh happened to interleave. Live
    // engines ignore the advance and serve the request on receipt.
    if let Some(at_us) = request.at_us {
        edge.engine.advance_to(SimTime::from_micros(at_us));
    }
    let now = edge.engine.now();
    let slo = request
        .slo_ms
        .map(SimDuration::from_millis)
        .unwrap_or(edge.engine.spec().slo);
    let deadline = now + slo;
    // The decision is pure arithmetic over a few vectors; running it
    // under the short snapshot lock beats cloning three Vecs per request.
    let decision = if request.at_us.is_some() {
        edge_decision(
            now,
            deadline,
            &edge.engine.edge_state(),
            edge.source,
            &edge.paths,
        )
    } else {
        edge_decision(now, deadline, &edge.state.lock(), edge.source, &edge.paths)
    };
    match decision {
        Decision::Drop(reason) => {
            edge.counters.rejected.incr();
            let id = EDGE_ID_BASE + edge.edge_seq.fetch_add(1, Ordering::Relaxed);
            let _ = conn_tx.send(Response::dropped(id, request.seq, true, reason.label()).encode());
        }
        Decision::Admit => {
            // Holding the pending lock across submit closes the race
            // with the dispatcher: a completion can only be routed once
            // the entry is present.
            let mut pending = edge.pending.lock();
            if pending.len() >= edge.max_pending {
                edge.counters.refused.incr();
                let _ = conn_tx.send(Response::error_line(
                    ErrorCode::Overloaded,
                    request.seq,
                    &format!(
                        "pending-request table is full ({} entries)",
                        edge.max_pending
                    ),
                ));
                return;
            }
            edge.counters.admitted.incr();
            let id = edge.engine.submit(SubmitSpec {
                slo: Some(slo),
                tag: 0,
                // Scheduled requests keep the replay gate pinned at
                // their arrival; plain requests release it (see
                // [`pard_engine_api::SubmitSpec::at`]).
                at: request.at_us.map(SimTime::from_micros),
            });
            pending.insert(
                id,
                PendingEntry {
                    conn_tx: conn_tx.clone(),
                    seq: request.seq,
                },
            );
        }
    }
}

fn metrics_loop(listener: TcpListener, edge: Arc<Edge>) {
    while !edge.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((mut stream, _)) => {
                let _ = serve_metrics(&mut stream, &edge);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
}

fn serve_metrics(stream: &mut TcpStream, edge: &Edge) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    // Consume the request head; the path is irrelevant (everything is
    // /metrics) but draining avoids RSTs on keep-alive clients.
    let mut buf = [0u8; 1024];
    let _ = stream.read(&mut buf);
    let body = render_metrics(edge);
    write!(
        stream,
        "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        body.len(),
        body
    )
}

/// Renders the Prometheus text exposition: the serving counters, the
/// per-module drop series, plus live queue-depth / goodput gauges.
pub fn render_metrics_text(
    snapshot: pard_metrics::CountersSnapshot,
    module_drops: &pard_metrics::ModuleDropsSnapshot,
    state: &EdgeState,
    pending: usize,
) -> String {
    let mut body = snapshot.to_prometheus("pard_gateway");
    body.push_str(&module_drops.to_prometheus("pard_gateway"));
    body.push_str("# TYPE pard_gateway_queue_depth gauge\n");
    for (module, depth) in state.queue_depths.iter().enumerate() {
        body.push_str(&format!(
            "pard_gateway_queue_depth{{module=\"{module}\"}} {depth}\n"
        ));
    }
    body.push_str(&format!(
        "# TYPE pard_gateway_pending_requests gauge\npard_gateway_pending_requests {pending}\n"
    ));
    body.push_str(&format!(
        "# TYPE pard_gateway_goodput_fraction gauge\npard_gateway_goodput_fraction {:.6}\n",
        snapshot.goodput_fraction()
    ));
    body.push_str(&format!(
        "# TYPE pard_gateway_drop_fraction gauge\npard_gateway_drop_fraction {:.6}\n",
        snapshot.drop_fraction()
    ));
    body
}

fn render_metrics(edge: &Edge) -> String {
    let state = edge.state.lock().clone();
    let pending = edge.pending.lock().len();
    render_metrics_text(
        edge.counters.snapshot(),
        &edge.module_drops.snapshot(),
        &state,
        pending,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pard_sim::SimDuration;

    #[test]
    fn metrics_text_contains_counters_and_gauges() {
        use pard_metrics::{DropReason, ModuleDropCounters};

        let state = EdgeState {
            queue_depths: vec![3, 1],
            workers: vec![2, 2],
            batch_sizes: vec![4, 4],
            exec_ms: vec![40.0, 20.0],
            slo: SimDuration::from_millis(400),
        };
        let snapshot = pard_metrics::CountersSnapshot {
            received: 10,
            admitted: 8,
            rejected: 2,
            completed_ok: 6,
            dropped: 2,
            ..Default::default()
        };
        let module_drops = ModuleDropCounters::new(2);
        module_drops.record(1, DropReason::PredictedViolation);
        module_drops.record(1, DropReason::SiblingDropped);
        let text = render_metrics_text(snapshot, &module_drops.snapshot(), &state, 2);
        assert!(text.contains("pard_gateway_received_total 10"));
        assert!(text.contains("pard_gateway_rejected_total 2"));
        assert!(text.contains("pard_gateway_queue_depth{module=\"0\"} 3"));
        assert!(text.contains("pard_gateway_queue_depth{module=\"1\"} 1"));
        assert!(text.contains("pard_gateway_pending_requests 2"));
        // Per-module drops are labeled series in the same exposition.
        assert!(text.contains("# TYPE pard_gateway_module_dropped_total counter"));
        assert!(
            text.contains("pard_gateway_module_dropped_total{module=\"1\",reason=\"predicted\"} 1")
        );
        assert!(
            text.contains("pard_gateway_module_dropped_total{module=\"1\",reason=\"sibling\"} 1")
        );
        assert!(
            text.contains("pard_gateway_module_dropped_total{module=\"0\",reason=\"predicted\"} 0")
        );
    }

    #[test]
    fn metrics_scrape_format_is_well_formed() {
        // Every line is either a `# TYPE <name> counter|gauge` header or
        // a `<name>[{labels}] <value>` sample whose value parses —
        // the contract an actual Prometheus scraper holds us to.
        let state = EdgeState {
            queue_depths: vec![0, 0],
            workers: vec![1, 1],
            batch_sizes: vec![4, 4],
            exec_ms: vec![40.0, 20.0],
            slo: SimDuration::from_millis(400),
        };
        let drops = pard_metrics::ModuleDropCounters::new(2);
        drops.record(0, pard_metrics::DropReason::WorkerFailed);
        let text = render_metrics_text(
            pard_metrics::CountersSnapshot::default(),
            &drops.snapshot(),
            &state,
            0,
        );
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut parts = rest.split_whitespace();
                let name = parts.next().expect("metric name");
                assert!(name.starts_with("pard_gateway_"), "{line}");
                let kind = parts.next().expect("metric kind");
                assert!(kind == "counter" || kind == "gauge", "{line}");
                assert_eq!(parts.next(), None, "{line}");
            } else {
                let (series, value) = line.rsplit_once(' ').expect("sample line");
                assert!(series.starts_with("pard_gateway_"), "{line}");
                if let Some(open) = series.find('{') {
                    assert!(series.ends_with('}'), "{line}");
                    let labels = &series[open + 1..series.len() - 1];
                    for label in labels.split(',') {
                        let (key, val) = label.split_once('=').expect("key=\"value\"");
                        assert!(!key.is_empty(), "{line}");
                        assert!(val.starts_with('"') && val.ends_with('"'), "{line}");
                    }
                }
                assert!(value.parse::<f64>().is_ok(), "{line}");
            }
        }
    }

    #[test]
    fn edge_ids_round_trip_exactly_through_json_numbers() {
        // Wire ids travel as f64; every edge id must survive the trip.
        for seq in [0u64, 1, 2, 1_000_000_007] {
            let id = EDGE_ID_BASE + seq;
            assert_eq!((id as f64) as u64, id, "seq {seq} lost precision");
        }
        // And the space stays disjoint from any feasible record index.
        assert!(EDGE_ID_BASE > u32::MAX as u64 * 1024);
    }
}
