//! The TCP serving front-end.
//!
//! One accept loop, one reader + one writer thread per connection
//! (requests pipeline freely; responses carry the client's `seq` and
//! may return out of order), one dispatcher thread routing
//! [`Completion`]s from the engine back to connections, one edge-state
//! poller publishing the admission snapshot, one pump thread driving
//! engines whose virtual time does not advance on its own, and one
//! minimal-HTTP metrics listener. The PARD admission check runs in the
//! reader thread at accept time — a hopeless request is answered
//! `dropped` without ever touching a worker queue. Requests carrying a
//! scheduled arrival (`at_us`, deterministic trace replay) first steer
//! a stepped engine's virtual clock to that instant and are admitted
//! against a snapshot taken there, making replayed scenarios
//! bit-reproducible end to end.
//!
//! # The hot path
//!
//! The per-request path is engineered to scale with connection count:
//!
//! * **Admission is lock-free.** The poller publishes an immutable
//!   [`EdgeSnapshot`] (with the critical-path admission arithmetic
//!   precomputed) through an epoch counter; each reader thread
//!   revalidates its cached `Arc` with a single atomic load and
//!   decides with pure arithmetic — no lock, no clone, no allocation
//!   (see [`crate::admission::EdgePublisher`]).
//! * **The pending table is sharded.** Submits and completions on
//!   different requests land on different
//!   [`crate::pending::PendingMap`] shards; capacity is one atomic
//!   reservation, and the submit/complete race is closed by orphan
//!   parking instead of a global lock held across `submit`.
//! * **The wire path reuses buffers.** Lines decode through the typed
//!   scanner (no `Value` tree, payloads measured in place), and each
//!   connection's writer drains its queue into one reusable encode
//!   buffer behind a `BufWriter`, flushing once per batch instead of
//!   once per reply.
//! * **Submits wake the pump.** Stepped engines are driven the moment
//!   work arrives instead of on the pump thread's next idle tick,
//!   which is what bounds closed-loop RTT on the sim backend.
//!
//! The gateway is engine-agnostic: it serves any
//! [`pard_engine_api::EngineHandle`], so the same wire protocol and
//! admission path run over the live threaded runtime or the
//! deterministic simulator (see [`pard_engine_api::EngineBuilder`]).

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, Sender, TryRecvError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use pard_core::Decision;
use pard_engine_api::{Completion, EngineHandle, SubmitSpec};
use pard_metrics::{DropReason, ModuleDropCounters, Outcome, RequestLog, ServingCounters};
use pard_obs::{EngineFrame, FlightRecorder, FrameBus, ObsEvent, ObsKind};
use pard_sim::{SimDuration, SimTime};

use crate::admission::{EdgePublisher, EdgeSnapshot, SnapshotReader};
use crate::pending::PendingMap;
use crate::telemetry::{window_rates, RttWindow, DEFAULT_RTT_SAMPLES};
use crate::wire::{seq_hint, ClientLine, ErrorCode, Response};

/// Hard cap on one request line; a connection exceeding it gets an
/// error response and is closed, bounding per-connection memory against
/// newline-free byte streams.
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// Ids for edge-rejected requests live in their own space so they can
/// never collide with engine-assigned ids (record indices, which a
/// process cannot push anywhere near 2^52). The base is kept within
/// f64's exact-integer range because wire ids travel as JSON numbers:
/// 2^52 + seq round-trips exactly for any realistic seq, where 2^63
/// would silently lose its low bits.
pub const EDGE_ID_BASE: u64 = 1 << 52;

/// How often the accept loop reaps finished connection threads while
/// idle (no new connections to trigger reaping on).
const REAP_INTERVAL: Duration = Duration::from_millis(500);

/// Gateway configuration (networking only — engine construction lives
/// in [`pard_engine_api::EngineBuilder`]).
#[derive(Clone, Debug)]
pub struct GatewayConfig {
    /// Listen address for the request protocol (`port 0` = ephemeral).
    pub addr: String,
    /// Listen address for the `/metrics` endpoint.
    pub metrics_addr: String,
    /// How often the admission snapshot refreshes (wall clock).
    pub edge_refresh: Duration,
    /// Cap on simultaneously admitted-but-unresolved requests; above
    /// it new requests are answered with [`ErrorCode::Overloaded`].
    pub max_pending: usize,
    /// Whether the deterministic-replay controls (`at_us` arrival
    /// stamps, `advance_us` control lines) are honoured. Replay steers
    /// the *shared* virtual clock, so it is a cooperative testing
    /// discipline: any client could fast-forward time past every other
    /// connection's deadlines. Disable on gateways serving mutually
    /// untrusting clients; such requests are then answered with a
    /// `malformed` envelope.
    pub allow_replay: bool,
    /// How often the telemetry sampler publishes an [`EngineFrame`]
    /// (the `/events` stream's cadence, wall clock).
    pub telemetry_period: Duration,
}

impl Default for GatewayConfig {
    fn default() -> GatewayConfig {
        GatewayConfig {
            addr: "127.0.0.1:7311".into(),
            metrics_addr: "127.0.0.1:7312".into(),
            edge_refresh: Duration::from_millis(10),
            max_pending: 8192,
            allow_replay: true,
            telemetry_period: Duration::from_millis(100),
        }
    }
}

/// One queued item on a connection's writer channel. Outcome replies
/// travel typed and are encoded by the writer into its reusable
/// buffer; pre-rendered lines (error envelopes — the cold path) travel
/// as strings.
enum WriteItem {
    /// A typed outcome reply, encoded writer-side.
    Reply(Response),
    /// An already-encoded line (no trailing newline).
    Line(String),
}

struct PendingEntry {
    /// Per-connection writer channel.
    conn_tx: Sender<WriteItem>,
    seq: Option<u64>,
}

/// Wakes the pump thread the moment a submit gives it work, so stepped
/// engines resolve requests at notify latency instead of on the next
/// idle-sleep tick.
///
/// The fast path is one `armed` load: while the pump is actively
/// working (or the engine is live and never pumps), submitters skip
/// the signal mutex entirely. The generation counter closes the lost-
/// wakeup race: the pump reads the generation *before* its final
/// empty-handed `pump()`, and [`PumpSignal::wait_after`] refuses to
/// sleep if any notify moved the generation since — a submit that
/// landed between the check and the wait is therefore never slept
/// through (the engine-mutex ordering makes the submitter's `armed`
/// load observe the pump's store).
struct PumpSignal {
    generation: Mutex<u64>,
    cv: Condvar,
    armed: AtomicBool,
}

impl PumpSignal {
    fn new() -> PumpSignal {
        PumpSignal {
            generation: Mutex::new(0),
            cv: Condvar::new(),
            armed: AtomicBool::new(false),
        }
    }

    /// Declares intent to sleep; returns the generation to hand to
    /// [`PumpSignal::wait_after`]. Call *before* the final work check.
    fn arm(&self) -> u64 {
        self.armed.store(true, Ordering::SeqCst);
        *self.generation.lock()
    }

    /// Withdraws the intent (work was found after all).
    fn disarm(&self) {
        self.armed.store(false, Ordering::SeqCst);
    }

    /// Sleeps until a notify or `timeout` — unless the generation
    /// already moved past `observed`, in which case a submit raced the
    /// final check and the pump should run again immediately.
    fn wait_after(&self, observed: u64, timeout: Duration) {
        let mut generation = self.generation.lock();
        if *generation == observed {
            self.cv.wait_for(&mut generation, timeout);
        }
        drop(generation);
        self.disarm();
    }

    /// Wakes an armed pump; a no-op (one atomic load) while the pump
    /// is busy.
    fn notify(&self) {
        if !self.armed.load(Ordering::SeqCst) {
            return;
        }
        *self.generation.lock() += 1;
        self.cv.notify_all();
    }

    /// Unconditional wake (shutdown).
    fn force_notify(&self) {
        *self.generation.lock() += 1;
        self.cv.notify_all();
    }
}

/// State shared by reader threads (everything request handling needs).
struct Edge {
    engine: Box<dyn EngineHandle>,
    // `counters`, `module_drops`, and `pending` are separately Arc'd
    // because the dispatcher holds them without holding the Edge (and
    // thus keeps routing completions while shutdown drains the engine).
    counters: Arc<ServingCounters>,
    module_drops: Arc<ModuleDropCounters>,
    pending: Arc<PendingMap<PendingEntry, Completion>>,
    /// The epoch-published admission snapshot (see the module docs).
    snapshot: EdgePublisher,
    pump_signal: PumpSignal,
    shutdown: AtomicBool,
    app_name: String,
    /// The pipeline's entry module (static).
    source: usize,
    /// Downstream paths from the entry module to the sink (static) —
    /// the admission estimate charges the critical one, so parallel
    /// DAG branches are not double-counted.
    paths: Vec<Vec<usize>>,
    edge_seq: AtomicU64,
    allow_replay: bool,
    /// Cached [`EngineHandle::stepped`]: live engines never need the
    /// pump, so per-request submit paths must not touch the pump
    /// signal for them at all.
    stepped: bool,
    /// The engine's flight recorder ([`EngineHandle::telemetry`]);
    /// edge admission decisions are recorded into the same ring the
    /// engine writes its lifecycle events to, so `/flightrecord`
    /// serves one time-ordered stream.
    recorder: Option<Arc<FlightRecorder>>,
    /// The `/events` stream's frame bus: the sampler publishes, SSE
    /// subscribers wait. Laggy subscribers skip to the latest frame
    /// and can never block the sampler.
    frames: Arc<FrameBus>,
    /// Rolling RTT window behind `pard_gateway_rtt_us` and the frame
    /// quantiles; completions push, scrapes read.
    rtt: Arc<RttWindow>,
}

impl Edge {
    /// Builds and publishes a fresh snapshot from the engine's current
    /// state (the poller tick, and the scheduled-replay path).
    fn fresh_snapshot(&self) -> EdgeSnapshot {
        EdgeSnapshot::new(self.engine.edge_state(), self.source, &self.paths)
    }

    /// Records one edge admission decision into the engine's flight
    /// recorder: the Eq. 3 inputs plus the verdict. `reason` is the
    /// drop reason for rejections, `None` for admissions. Costs one
    /// ring write; a no-op for engines without a recorder.
    #[inline]
    fn record_edge_decision(
        &self,
        now: SimTime,
        id: u64,
        trace: &crate::admission::EdgeTrace,
        reason: Option<DropReason>,
    ) {
        if let Some(recorder) = &self.recorder {
            recorder.record(&ObsEvent {
                t_us: now.as_micros(),
                req: id,
                kind: ObsKind::EdgeDecision {
                    lead_us: trace.lead_us,
                    sub_us: trace.sub_us,
                    slack_us: trace.slack_us,
                    reason,
                },
            });
        }
    }
}

/// A running gateway. Dropping it without calling
/// [`Gateway::shutdown`] leaks the serving threads; tests and binaries
/// should always shut down explicitly to collect the request log.
pub struct Gateway {
    edge: Arc<Edge>,
    addr: SocketAddr,
    metrics_addr: SocketAddr,
    service_threads: Vec<JoinHandle<()>>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
    dispatcher: JoinHandle<()>,
}

impl Gateway {
    /// Starts serving `engine` — any [`EngineHandle`], simulated or
    /// live — over the wire protocol, with PARD admission at the edge.
    pub fn start(engine: Box<dyn EngineHandle>, config: GatewayConfig) -> io::Result<Gateway> {
        let (completion_tx, completion_rx) = mpsc::channel();
        engine.set_completion_sink(completion_tx);

        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let metrics_listener = TcpListener::bind(&config.metrics_addr)?;
        metrics_listener.set_nonblocking(true)?;
        let metrics_addr = metrics_listener.local_addr()?;

        let source = engine.spec().source();
        let paths = pard_pipeline::graph::downstream_paths(engine.spec(), source);
        let recorder = engine.telemetry();
        let edge = Arc::new(Edge {
            snapshot: EdgePublisher::new(EdgeSnapshot::new(engine.edge_state(), source, &paths)),
            counters: Arc::new(ServingCounters::new()),
            module_drops: Arc::new(ModuleDropCounters::new(engine.spec().modules.len())),
            pending: Arc::new(PendingMap::new(config.max_pending)),
            pump_signal: PumpSignal::new(),
            shutdown: AtomicBool::new(false),
            app_name: engine.spec().name.clone(),
            source,
            paths,
            edge_seq: AtomicU64::new(0),
            allow_replay: config.allow_replay,
            stepped: engine.stepped(),
            recorder,
            frames: Arc::new(FrameBus::new()),
            rtt: Arc::new(RttWindow::new(DEFAULT_RTT_SAMPLES)),
            engine,
        });

        let conn_threads = Arc::new(Mutex::new(Vec::new()));
        let mut service_threads = Vec::new();

        // Dispatcher: engine completions → per-connection channels.
        // Holds only the pending map and counters, so it can outlive the
        // accept/reader threads and drain the engine during shutdown.
        let dispatcher = {
            let pending = Arc::clone(&edge.pending);
            let counters = Arc::clone(&edge.counters);
            let module_drops = Arc::clone(&edge.module_drops);
            let rtt = Arc::clone(&edge.rtt);
            std::thread::spawn(move || {
                dispatcher_loop(completion_rx, pending, counters, module_drops, rtt)
            })
        };

        // Edge-state poller: publishes the admission snapshot.
        {
            let edge = Arc::clone(&edge);
            let refresh = config.edge_refresh;
            service_threads.push(std::thread::spawn(move || {
                while !edge.shutdown.load(Ordering::SeqCst) {
                    edge.snapshot.publish(edge.fresh_snapshot());
                    std::thread::sleep(refresh);
                }
            }));
        }

        // Pump: advances engines with a stepped virtual clock (the
        // simulator). Self-driving engines return false and this thread
        // idles on the signal; submits notify it so work is picked up
        // at wake latency, not on the next timeout tick.
        {
            let edge = Arc::clone(&edge);
            service_threads.push(std::thread::spawn(move || {
                while !edge.shutdown.load(Ordering::SeqCst) {
                    let observed = edge.pump_signal.arm();
                    if edge.stepped && edge.engine.pump() {
                        edge.pump_signal.disarm();
                        continue;
                    }
                    // Live engines are self-driving: their pump thread
                    // just parks here (no per-request wakes reach it;
                    // see `handle_request`) until shutdown's
                    // force-notify.
                    let idle = if edge.stepped {
                        Duration::from_millis(1)
                    } else {
                        Duration::from_millis(200)
                    };
                    edge.pump_signal.wait_after(observed, idle);
                }
            }));
        }

        // Accept loop.
        {
            let edge = Arc::clone(&edge);
            let conn_threads = Arc::clone(&conn_threads);
            service_threads.push(std::thread::spawn(move || {
                accept_loop(listener, edge, conn_threads);
            }));
        }

        // Telemetry sampler: periodically folds the serving counters,
        // the published admission snapshot, and the RTT window into an
        // EngineFrame and publishes it on the frame bus. Off the hot
        // path entirely — per-request work never waits on it.
        {
            let edge = Arc::clone(&edge);
            let period = config.telemetry_period;
            service_threads.push(std::thread::spawn(move || {
                let mut seq = 0u64;
                let mut prev = edge.counters.snapshot();
                loop {
                    let (frame, counts) = build_frame(&edge, seq, &prev);
                    prev = counts;
                    edge.frames.publish(frame);
                    seq += 1;
                    if edge.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    std::thread::sleep(period);
                }
            }));
        }

        // Metrics endpoint.
        {
            let edge = Arc::clone(&edge);
            service_threads.push(std::thread::spawn(move || {
                metrics_loop(metrics_listener, edge);
            }));
        }

        Ok(Gateway {
            edge,
            addr,
            metrics_addr,
            service_threads,
            conn_threads,
            dispatcher,
        })
    }

    /// The bound request-protocol address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound `/metrics` address.
    pub fn metrics_addr(&self) -> SocketAddr {
        self.metrics_addr
    }

    /// Snapshot of the serving counters.
    pub fn counters(&self) -> pard_metrics::CountersSnapshot {
        self.edge.counters.snapshot()
    }

    /// Snapshot of the per-module drop counters (where admitted
    /// requests died inside the pipeline, and why).
    pub fn module_drops(&self) -> pard_metrics::ModuleDropsSnapshot {
        self.edge.module_drops.snapshot()
    }

    /// Admitted-but-unresolved requests currently in the pending table
    /// (the `pard_gateway_pending_requests` gauge).
    pub fn pending_len(&self) -> usize {
        self.edge.pending.len()
    }

    /// The engine's flight recorder, if it records lifecycle events —
    /// the same ring `/flightrecord` serves.
    pub fn recorder(&self) -> Option<Arc<FlightRecorder>> {
        self.edge.recorder.clone()
    }

    /// The telemetry frame bus the `/events` stream serves; in-process
    /// consumers can subscribe directly with
    /// [`pard_obs::FrameBus::wait_newer`].
    pub fn frames(&self) -> Arc<FrameBus> {
        Arc::clone(&self.edge.frames)
    }

    /// Stops accepting, drains in-flight requests (bounded by
    /// `drain_virtual` of virtual time and 30 s of wall time), stops
    /// the engine, and returns its request log.
    pub fn shutdown(self, drain_virtual: SimDuration) -> RequestLog {
        self.edge.shutdown.store(true, Ordering::SeqCst);
        // Wake the pump thread out of its idle wait so it observes the
        // flag now rather than on its next timeout tick.
        self.edge.pump_signal.force_notify();
        for handle in self.service_threads {
            let _ = handle.join();
        }
        // Readers stop within one read-timeout (100 ms) of the flag;
        // wait that out so no new admissions race the flush below, then
        // give the pipeline a bounded window to resolve what's in
        // flight. Stepped engines no longer have their pump thread, so
        // this loop pumps them directly. On a *stepped* engine the loop
        // also gives up once the pump stops progressing: when a replay
        // client vanished without its trailing advance, the clock gate
        // is unreachable and waiting longer cannot resolve anything —
        // the requests are flushed below and the engine drain (which
        // releases the gate) still runs. Live engines resolve work on
        // their own threads, so only the 30 s ceiling applies to them.
        std::thread::sleep(Duration::from_millis(150));
        let stepped = self.edge.engine.stepped();
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        let mut last_progress = std::time::Instant::now();
        loop {
            if self.edge.pending.is_empty() || std::time::Instant::now() >= deadline {
                break;
            }
            if self.edge.engine.pump() {
                last_progress = std::time::Instant::now();
            } else if stepped && last_progress.elapsed() > Duration::from_millis(500) {
                break;
            } else {
                std::thread::sleep(Duration::from_millis(5));
            }
        }
        // Flush whatever is still pending *before* joining connection
        // threads: each connection's writer exits only when every sender
        // to its channel is dropped, and flushed PendingEntry senders are
        // part of that set — flushing after the join would deadlock on
        // any request the pipeline never resolves. Flushed requests are
        // answered and counted as drops, so no client hangs and the
        // admitted = ok + late + dropped invariant survives shutdown.
        for (id, entry) in self.edge.pending.drain_entries() {
            self.edge.counters.dropped.incr();
            let _ = entry.conn_tx.send(WriteItem::Reply(Response::dropped(
                id, entry.seq, false, "shutdown",
            )));
        }
        let conn_threads = std::mem::take(&mut *self.conn_threads.lock());
        for handle in conn_threads {
            let _ = handle.join();
        }
        // Draining stops the engine and drops its completion sender,
        // which is what lets the dispatcher exit.
        let log = self.edge.engine.drain(drain_virtual);
        let _ = self.dispatcher.join();
        log
    }
}

/// Classifies one completion into its wire reply, bumping the serving
/// counters — shared by the dispatcher (completion found its entry) and
/// the reader thread (completion raced the insert and was parked).
fn completion_reply(
    completion: &Completion,
    seq: Option<u64>,
    counters: &ServingCounters,
    module_drops: &ModuleDropCounters,
    rtt: &RttWindow,
) -> Response {
    let latency_ms = completion
        .latency()
        .map(|d| d.as_millis_f64())
        .unwrap_or(0.0);
    match completion.outcome {
        Outcome::Completed { .. } if completion.within_slo() => {
            counters.completed_ok.incr();
            rtt.push(latency_ms * 1000.0);
            Response::ok(completion.id, seq, latency_ms)
        }
        Outcome::Completed { .. } => {
            counters.completed_late.incr();
            rtt.push(latency_ms * 1000.0);
            Response::violated(completion.id, seq, latency_ms)
        }
        Outcome::Dropped { module, reason, .. } => {
            counters.dropped.incr();
            module_drops.record(module, reason);
            Response::dropped(completion.id, seq, false, reason.label())
        }
        Outcome::InFlight => unreachable!("completions are terminal"),
    }
}

fn dispatcher_loop(
    completions: Receiver<Completion>,
    pending: Arc<PendingMap<PendingEntry, Completion>>,
    counters: Arc<ServingCounters>,
    module_drops: Arc<ModuleDropCounters>,
    rtt: Arc<RttWindow>,
) {
    // Ends when the engine (the only sender) shuts down.
    while let Ok(completion) = completions.recv() {
        // An entry means the submit already filed it; otherwise the
        // completion is parked in the shard and the inserting reader
        // claims it (see `crate::pending`). A completion for a request
        // flushed during shutdown parks harmlessly.
        let Some(entry) = pending.take_or_stash(completion.id, completion) else {
            continue;
        };
        let response = completion_reply(&completion, entry.seq, &counters, &module_drops, &rtt);
        let _ = entry.conn_tx.send(WriteItem::Reply(response));
    }
}

fn accept_loop(
    listener: TcpListener,
    edge: Arc<Edge>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    let mut last_reap = std::time::Instant::now();
    while !edge.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let edge = Arc::clone(&edge);
                let handle = std::thread::spawn(move || {
                    if let Err(e) = serve_connection(stream, edge) {
                        // Client went away mid-request; routine.
                        let _ = e;
                    }
                });
                let mut threads = conn_threads.lock();
                // Reap finished connections so long-running gateways do
                // not accumulate one handle per connection ever served.
                threads.retain(|h: &JoinHandle<()>| !h.is_finished());
                threads.push(handle);
                last_reap = std::time::Instant::now();
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                // Reap on a timer too: an *idle* gateway would otherwise
                // hold every dead JoinHandle until the next connection
                // happens to arrive.
                if last_reap.elapsed() >= REAP_INTERVAL {
                    conn_threads
                        .lock()
                        .retain(|h: &JoinHandle<()>| !h.is_finished());
                    last_reap = std::time::Instant::now();
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
}

fn serve_connection(stream: TcpStream, edge: Arc<Edge>) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(100)))?;
    stream.set_nodelay(true)?;
    let write_half = stream.try_clone()?;
    let (conn_tx, conn_rx) = mpsc::channel::<WriteItem>();

    // Writer: sole serialiser of this connection's response lines.
    // Replies are encoded into one reusable buffer, and the channel is
    // drained per wakeup so a burst of completions costs one flush (one
    // syscall), not one per reply.
    let writer = std::thread::spawn(move || {
        let mut out = io::BufWriter::new(write_half);
        let mut buf = String::with_capacity(256);
        'serve: while let Ok(first) = conn_rx.recv() {
            let mut item = first;
            loop {
                buf.clear();
                match item {
                    WriteItem::Reply(response) => response.encode_into(&mut buf),
                    WriteItem::Line(line) => buf.push_str(&line),
                }
                buf.push('\n');
                if out.write_all(buf.as_bytes()).is_err() {
                    break 'serve;
                }
                match conn_rx.try_recv() {
                    Ok(next) => item = next,
                    Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => break,
                }
            }
            if out.flush().is_err() {
                break;
            }
        }
    });

    // Each reader caches the published admission snapshot, revalidated
    // per request with one atomic epoch load.
    let mut snapshots = SnapshotReader::new(&edge.snapshot);

    let mut reader = BufReader::new(stream);
    // Byte buffer + read_until, NOT read_line: read_line's UTF-8 guard
    // truncates partial bytes from the String when a read times out,
    // silently corrupting any request fragmented across the timeout
    // window. read_until keeps partial bytes in the buffer across the
    // Err return, so fragments reassemble on the next pass.
    //
    // Each call reads through a `take` limited to the remaining line
    // budget, so read_until returns (looking like EOF) the moment a
    // line would exceed MAX_LINE_BYTES — even for a client streaming
    // newline-free bytes continuously, which would otherwise keep an
    // unlimited read_until buffering forever without any check running.
    let mut line = Vec::new();
    loop {
        if edge.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let budget = (MAX_LINE_BYTES + 1 - line.len()) as u64;
        match (&mut reader).take(budget).read_until(b'\n', &mut line) {
            Ok(0) if line.is_empty() => break, // clean EOF
            Ok(0) => {
                // EOF with an unterminated final line: serve it, then the
                // next pass hits the clean-EOF arm.
                let text = String::from_utf8_lossy(&line);
                let trimmed = text.trim();
                if !trimmed.is_empty() {
                    handle_request(trimmed, &edge, &conn_tx, &mut snapshots);
                }
                line.clear();
            }
            Ok(_) => {
                if line.len() > MAX_LINE_BYTES {
                    oversized_line(&edge, &conn_tx);
                    // Briefly drain what the client already sent so the
                    // close is a clean FIN, not an RST that could clobber
                    // the error response in flight.
                    let deadline = std::time::Instant::now() + Duration::from_millis(250);
                    let mut sink = [0u8; 8192];
                    while std::time::Instant::now() < deadline {
                        match reader.read(&mut sink) {
                            Ok(0) | Err(_) => break,
                            Ok(_) => {}
                        }
                    }
                    break;
                }
                if line.ends_with(b"\n") {
                    let text = String::from_utf8_lossy(&line);
                    let trimmed = text.trim();
                    if !trimmed.is_empty() {
                        handle_request(trimmed, &edge, &conn_tx, &mut snapshots);
                    }
                    line.clear();
                }
                // No trailing newline and within budget: EOF remnant or
                // buffer-boundary read; loop to read the rest.
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                // The timeout exists only to re-check the shutdown flag;
                // partial bytes stay in `line`.
                continue;
            }
            Err(e) => return Err(e),
        }
    }
    drop(conn_tx);
    let _ = writer.join();
    Ok(())
}

fn oversized_line(edge: &Edge, conn_tx: &Sender<WriteItem>) {
    edge.counters.received.incr();
    edge.counters.protocol_errors.incr();
    let _ = conn_tx.send(WriteItem::Line(Response::error_line(
        ErrorCode::Malformed,
        None,
        &format!("request line exceeds {MAX_LINE_BYTES} bytes; closing connection"),
    )));
}

fn handle_request(
    line: &str,
    edge: &Edge,
    conn_tx: &Sender<WriteItem>,
    snapshots: &mut SnapshotReader,
) {
    let request = match ClientLine::decode(line) {
        // Replay control: steer a stepped engine's clock (live engines
        // ignore it). Not a request — no response, no serving counters.
        Ok(ClientLine::Advance { to_us }) if edge.allow_replay => {
            edge.engine.advance_to(SimTime::from_micros(to_us));
            return;
        }
        // A *refused* advance line gets an error response, so it is
        // counted like any other answered protocol error (keeping
        // received = admitted + unadmitted); honored ones above stay
        // invisible to the serving counters because they produce no
        // response at all.
        Ok(ClientLine::Advance { .. }) => {
            edge.counters.received.incr();
            edge.counters.protocol_errors.incr();
            let _ = conn_tx.send(WriteItem::Line(Response::error_line(
                ErrorCode::Malformed,
                None,
                "deterministic replay is disabled on this gateway",
            )));
            return;
        }
        Ok(ClientLine::Request(request)) => {
            edge.counters.received.incr();
            if request.at_us.is_some() && !edge.allow_replay {
                edge.counters.protocol_errors.incr();
                let _ = conn_tx.send(WriteItem::Line(Response::error_line(
                    ErrorCode::Malformed,
                    request.seq,
                    "deterministic replay (\"at_us\") is disabled on this gateway",
                )));
                return;
            }
            request
        }
        Err(e) => {
            edge.counters.received.incr();
            edge.counters.protocol_errors.incr();
            let _ = conn_tx.send(WriteItem::Line(Response::error_line(
                e.code,
                seq_hint(line),
                &e.message,
            )));
            return;
        }
    };
    if request.app != edge.app_name {
        edge.counters.protocol_errors.incr();
        let _ = conn_tx.send(WriteItem::Line(Response::error_line(
            ErrorCode::UnknownApp,
            request.seq,
            &format!(
                "unknown app {:?} (serving {:?})",
                request.app, edge.app_name
            ),
        )));
        return;
    }
    if edge.shutdown.load(Ordering::SeqCst) {
        // `refused`, not `rejected`: this is gateway back-pressure, not
        // a PARD admission decision.
        edge.counters.refused.incr();
        let _ = conn_tx.send(WriteItem::Line(Response::error_line(
            ErrorCode::ShuttingDown,
            request.seq,
            "gateway is shutting down",
        )));
        return;
    }

    // A scheduled request (deterministic trace replay) first steers the
    // stepped clock to its virtual arrival time; admission then runs
    // against a fresh snapshot taken at exactly that instant, so the
    // decision is a pure function of the schedule — not of how the
    // poller thread's wall-clock refresh happened to interleave. Live
    // engines ignore the advance and serve the request on receipt.
    if let Some(at_us) = request.at_us {
        edge.engine.advance_to(SimTime::from_micros(at_us));
    }
    let now = edge.engine.now();
    let slo = request
        .slo_ms
        .map(SimDuration::from_millis)
        .unwrap_or(edge.engine.spec().slo);
    let deadline = now + slo;
    // Ordinary traffic decides against the published snapshot — pure
    // reads on shared immutable data, no lock on this path. Scheduled
    // replay still takes a fresh snapshot at its exact arrival instant.
    // The traced variant carries the Eq. 3 inputs alongside the
    // decision so the flight recorder can explain it later.
    let (decision, trace) = if request.at_us.is_some() {
        edge.fresh_snapshot().decide_traced(now, deadline)
    } else {
        snapshots
            .current(&edge.snapshot)
            .decide_traced(now, deadline)
    };
    match decision {
        Decision::Drop(reason) => {
            edge.counters.rejected.incr();
            let id = EDGE_ID_BASE + edge.edge_seq.fetch_add(1, Ordering::Relaxed);
            edge.record_edge_decision(now, id, &trace, Some(reason));
            let _ = conn_tx.send(WriteItem::Reply(Response::dropped(
                id,
                request.seq,
                true,
                reason.label(),
            )));
        }
        Decision::Admit => {
            // Reserve capacity before the submit; the entry itself is
            // filed right after, and the shard-level orphan parking
            // closes the race with a completion firing in between (see
            // `crate::pending`).
            if !edge.pending.reserve() {
                edge.counters.refused.incr();
                let _ = conn_tx.send(WriteItem::Line(Response::error_line(
                    ErrorCode::Overloaded,
                    request.seq,
                    &format!(
                        "pending-request table is full ({} entries)",
                        edge.pending.capacity()
                    ),
                )));
                return;
            }
            edge.counters.admitted.incr();
            let id = edge.engine.submit(SubmitSpec {
                slo: Some(slo),
                tag: 0,
                // Scheduled requests keep the replay gate pinned at
                // their arrival; plain requests release it (see
                // [`pard_engine_api::SubmitSpec::at`]).
                at: request.at_us.map(SimTime::from_micros),
            });
            edge.record_edge_decision(now, id, &trace, None);
            // Give the pump thread the work immediately — stepped
            // engines only; a live engine resolves work on its own
            // threads and must not pay a per-request signal lock.
            // Scheduled
            // replay skips the wake: the replay connection drives the
            // clock itself (each `advance_to` delivers due terminals),
            // and waking the gated pump per arrival only makes it
            // contend for the engine lock.
            if edge.stepped && request.at_us.is_none() {
                edge.pump_signal.notify();
            }
            if let Some(completion) = edge.pending.insert(
                id,
                PendingEntry {
                    conn_tx: conn_tx.clone(),
                    seq: request.seq,
                },
            ) {
                // The completion beat the insert; answer it here.
                let response = completion_reply(
                    &completion,
                    request.seq,
                    &edge.counters,
                    &edge.module_drops,
                    &edge.rtt,
                );
                let _ = conn_tx.send(WriteItem::Reply(response));
            }
        }
    }
}

/// One telemetry sample: the cumulative serving counters plus window
/// rates differenced against `prev`, the published admission
/// snapshot's queue state and floor, the pending gauge, the summed
/// per-reason drop counters, and the rolling RTT quantiles. Returns
/// the counter snapshot it used so the sampler differences the next
/// frame against exactly what this one reported.
fn build_frame(
    edge: &Edge,
    seq: u64,
    prev: &pard_metrics::CountersSnapshot,
) -> (EngineFrame, pard_metrics::CountersSnapshot) {
    let counts = edge.counters.snapshot();
    let snapshot = edge.snapshot.load();
    let state = snapshot.state();
    let floor = snapshot.floor();
    let module_drops = edge.module_drops.snapshot();
    let mut drops_by_reason = vec![0u64; DropReason::ALL.len()];
    for module in &module_drops.counts {
        for (total, n) in drops_by_reason.iter_mut().zip(module) {
            *total += n;
        }
    }
    let rates = window_rates(prev, &counts);
    let [p50, p95, p99] = edge.rtt.quantiles();
    let frame = EngineFrame {
        seq,
        t_us: edge.engine.now().as_micros(),
        queues: state.queue_depths.clone(),
        workers: state.workers.clone(),
        pending: edge.pending.len(),
        floor_lead_us: floor.lead().as_micros(),
        floor_sub_us: floor.sub_total().as_micros(),
        received: counts.received,
        admitted: counts.admitted,
        rejected: counts.rejected,
        refused: counts.refused,
        completed_ok: counts.completed_ok,
        completed_late: counts.completed_late,
        dropped: counts.dropped,
        drops_by_reason,
        window_goodput: rates.goodput,
        window_violation: rates.violation,
        window_drop: rates.drop,
        rtt_p50_us: p50,
        rtt_p95_us: p95,
        rtt_p99_us: p99,
    };
    (frame, counts)
}

fn metrics_loop(listener: TcpListener, edge: Arc<Edge>) {
    // Each accepted connection gets its own thread: an `/events`
    // subscriber holds its connection open indefinitely and must not
    // block `/metrics` scrapes behind it.
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    while !edge.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let edge = Arc::clone(&edge);
                conns.retain(|h| !h.is_finished());
                conns.push(std::thread::spawn(move || {
                    let _ = serve_http(stream, &edge);
                }));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
    // Streaming handlers observe the shutdown flag within one wait
    // timeout; one-shot handlers are already gone or about to be.
    for handle in conns {
        let _ = handle.join();
    }
}

/// Minimal HTTP/1.x router for the observability listener: parse the
/// request line, drain the header block, dispatch on the path — one
/// request per connection. A malformed request line gets `400`, a
/// non-GET method `405`, an unknown path `404`; each as a proper
/// response instead of the old behaviour of answering every byte
/// stream with the `/metrics` body.
fn serve_http(stream: TcpStream, edge: &Edge) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut line = String::new();
    if reader.read_line(&mut line).is_err() || line.trim().is_empty() {
        return Ok(()); // client vanished before sending a request line
    }
    // Drain the header block so the close after a one-shot response is
    // a clean FIN — a client still mid-send would otherwise see an RST
    // clobber the response in flight. Bounded by the read timeout.
    loop {
        let mut header = String::new();
        match reader.read_line(&mut header) {
            Ok(n) if n > 0 && header != "\r\n" && header != "\n" => continue,
            _ => break,
        }
    }
    let mut stream = stream;
    let Some((method, target)) = parse_request_line(&line) else {
        return respond(
            &mut stream,
            "400 Bad Request",
            "text/plain",
            "malformed request line\n",
        );
    };
    if method != "GET" {
        return respond(
            &mut stream,
            "405 Method Not Allowed",
            "text/plain",
            "only GET is supported\n",
        );
    }
    let (path, query) = match target.split_once('?') {
        Some((path, query)) => (path, Some(query)),
        None => (target, None),
    };
    match path {
        "/metrics" => respond(
            &mut stream,
            "200 OK",
            "text/plain; version=0.0.4",
            &render_metrics(edge),
        ),
        "/events" => serve_events(&mut stream, edge),
        "/flightrecord" => serve_flightrecord(&mut stream, edge, query),
        _ => respond(
            &mut stream,
            "404 Not Found",
            "text/plain",
            "unknown path; try /metrics, /events, or /flightrecord\n",
        ),
    }
}

/// Splits a `METHOD SP TARGET SP HTTP/x.y` request line; `None` when
/// the line does not have that shape.
fn parse_request_line(line: &str) -> Option<(&str, &str)> {
    let mut parts = line.trim_end().split(' ');
    let method = parts.next()?;
    let target = parts.next()?;
    let version = parts.next()?;
    if method.is_empty()
        || !target.starts_with('/')
        || !version.starts_with("HTTP/")
        || parts.next().is_some()
    {
        return None;
    }
    Some((method, target))
}

fn respond(stream: &mut TcpStream, status: &str, content_type: &str, body: &str) -> io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    )
}

/// `GET /events`: streams telemetry frames as server-sent events, one
/// `data:` line of JSON per frame. The subscriber always receives the
/// *latest* frame — a laggy consumer skips intermediate frames rather
/// than backpressuring the sampler — and the stream ends at shutdown
/// or when the client disconnects.
fn serve_events(stream: &mut TcpStream, edge: &Edge) -> io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 200 OK\r\nContent-Type: text/event-stream\r\nCache-Control: no-cache\r\nConnection: close\r\n\r\n"
    )?;
    let mut seen = 0u64;
    while !edge.shutdown.load(Ordering::SeqCst) {
        // The timeout exists only to re-check the shutdown flag.
        let Some((epoch, frame)) = edge.frames.wait_newer(seen, Duration::from_millis(250)) else {
            continue;
        };
        seen = epoch;
        write!(stream, "data: {}\n\n", frame.to_json_line())?;
    }
    Ok(())
}

/// `GET /flightrecord[?last_us=N]`: dumps the engine's flight-recorder
/// ring as JSONL, oldest event first — the whole retained window, or
/// only events within `N` microseconds of the newest one.
fn serve_flightrecord(stream: &mut TcpStream, edge: &Edge, query: Option<&str>) -> io::Result<()> {
    let last_us = match query
        .into_iter()
        .flat_map(|q| q.split('&'))
        .find_map(|kv| kv.strip_prefix("last_us="))
    {
        Some(raw) => match raw.parse::<u64>() {
            Ok(n) => Some(n),
            Err(_) => {
                return respond(
                    stream,
                    "400 Bad Request",
                    "text/plain",
                    "last_us must be an unsigned integer of microseconds\n",
                )
            }
        },
        None => None,
    };
    let Some(recorder) = &edge.recorder else {
        return respond(
            stream,
            "404 Not Found",
            "text/plain",
            "the engine behind this gateway exposes no flight recorder\n",
        );
    };
    let events = match last_us {
        Some(n) => recorder.dump_last_us(n),
        None => recorder.dump(),
    };
    let mut body = String::with_capacity(events.len() * 96 + 1);
    for event in &events {
        body.push_str(&event.to_json_line());
        body.push('\n');
    }
    respond(stream, "200 OK", "application/x-ndjson", &body)
}

/// Renders the Prometheus text exposition: the serving counters, the
/// per-module drop series, plus live queue-depth / goodput gauges.
pub fn render_metrics_text(
    snapshot: pard_metrics::CountersSnapshot,
    module_drops: &pard_metrics::ModuleDropsSnapshot,
    state: &pard_engine_api::EdgeState,
    pending: usize,
) -> String {
    let mut body = snapshot.to_prometheus("pard_gateway");
    body.push_str(&module_drops.to_prometheus("pard_gateway"));
    body.push_str("# TYPE pard_gateway_queue_depth gauge\n");
    for (module, depth) in state.queue_depths.iter().enumerate() {
        body.push_str(&format!(
            "pard_gateway_queue_depth{{module=\"{module}\"}} {depth}\n"
        ));
    }
    body.push_str(&format!(
        "# TYPE pard_gateway_pending_requests gauge\npard_gateway_pending_requests {pending}\n"
    ));
    body.push_str(&format!(
        "# TYPE pard_gateway_goodput_fraction gauge\npard_gateway_goodput_fraction {:.6}\n",
        snapshot.goodput_fraction()
    ));
    body.push_str(&format!(
        "# TYPE pard_gateway_drop_fraction gauge\npard_gateway_drop_fraction {:.6}\n",
        snapshot.drop_fraction()
    ));
    body
}

fn render_metrics(edge: &Edge) -> String {
    // The published snapshot is shared immutable data: rendering reads
    // it through the same `Arc` the admission path uses instead of
    // cloning the whole `EdgeState` per scrape.
    let snapshot = edge.snapshot.load();
    let mut body = render_metrics_text(
        edge.counters.snapshot(),
        &edge.module_drops.snapshot(),
        snapshot.state(),
        edge.pending.len(),
    );
    body.push_str(&crate::telemetry::render_rtt_lines(
        "pard_gateway",
        edge.rtt.quantiles(),
    ));
    body
}

#[cfg(test)]
mod tests {
    use super::*;
    use pard_engine_api::EdgeState;
    use pard_sim::SimDuration;

    #[test]
    fn metrics_text_contains_counters_and_gauges() {
        use pard_metrics::{DropReason, ModuleDropCounters};

        let state = EdgeState {
            queue_depths: vec![3, 1],
            workers: vec![2, 2],
            batch_sizes: vec![4, 4],
            exec_ms: vec![40.0, 20.0],
            slo: SimDuration::from_millis(400),
        };
        let snapshot = pard_metrics::CountersSnapshot {
            received: 10,
            admitted: 8,
            rejected: 2,
            completed_ok: 6,
            dropped: 2,
            ..Default::default()
        };
        let module_drops = ModuleDropCounters::new(2);
        module_drops.record(1, DropReason::PredictedViolation);
        module_drops.record(1, DropReason::SiblingDropped);
        let text = render_metrics_text(snapshot, &module_drops.snapshot(), &state, 2);
        assert!(text.contains("pard_gateway_received_total 10"));
        assert!(text.contains("pard_gateway_rejected_total 2"));
        assert!(text.contains("pard_gateway_queue_depth{module=\"0\"} 3"));
        assert!(text.contains("pard_gateway_queue_depth{module=\"1\"} 1"));
        assert!(text.contains("pard_gateway_pending_requests 2"));
        // Per-module drops are labeled series in the same exposition.
        assert!(text.contains("# TYPE pard_gateway_module_dropped_total counter"));
        assert!(
            text.contains("pard_gateway_module_dropped_total{module=\"1\",reason=\"predicted\"} 1")
        );
        assert!(
            text.contains("pard_gateway_module_dropped_total{module=\"1\",reason=\"sibling\"} 1")
        );
        assert!(
            text.contains("pard_gateway_module_dropped_total{module=\"0\",reason=\"predicted\"} 0")
        );
    }

    #[test]
    fn metrics_scrape_format_is_well_formed() {
        // Every line is either a `# TYPE <name> counter|gauge` header or
        // a `<name>[{labels}] <value>` sample whose value parses —
        // the contract an actual Prometheus scraper holds us to.
        let state = EdgeState {
            queue_depths: vec![0, 0],
            workers: vec![1, 1],
            batch_sizes: vec![4, 4],
            exec_ms: vec![40.0, 20.0],
            slo: SimDuration::from_millis(400),
        };
        let drops = pard_metrics::ModuleDropCounters::new(2);
        drops.record(0, pard_metrics::DropReason::WorkerFailed);
        let mut text = render_metrics_text(
            pard_metrics::CountersSnapshot::default(),
            &drops.snapshot(),
            &state,
            0,
        );
        // The full scrape appends the RTT summary family; hold it to
        // the same contract.
        text.push_str(&crate::telemetry::render_rtt_lines(
            "pard_gateway",
            [150.0, 900.0, 1200.5],
        ));
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut parts = rest.split_whitespace();
                let name = parts.next().expect("metric name");
                assert!(name.starts_with("pard_gateway_"), "{line}");
                let kind = parts.next().expect("metric kind");
                assert!(
                    kind == "counter" || kind == "gauge" || kind == "summary",
                    "{line}"
                );
                assert_eq!(parts.next(), None, "{line}");
            } else {
                let (series, value) = line.rsplit_once(' ').expect("sample line");
                assert!(series.starts_with("pard_gateway_"), "{line}");
                if let Some(open) = series.find('{') {
                    assert!(series.ends_with('}'), "{line}");
                    let labels = &series[open + 1..series.len() - 1];
                    for label in labels.split(',') {
                        let (key, val) = label.split_once('=').expect("key=\"value\"");
                        assert!(!key.is_empty(), "{line}");
                        assert!(val.starts_with('"') && val.ends_with('"'), "{line}");
                    }
                }
                assert!(value.parse::<f64>().is_ok(), "{line}");
            }
        }
    }

    #[test]
    fn request_line_parser_accepts_http_and_rejects_noise() {
        assert_eq!(
            parse_request_line("GET /metrics HTTP/1.1\r\n"),
            Some(("GET", "/metrics"))
        );
        assert_eq!(
            parse_request_line("GET /flightrecord?last_us=5000 HTTP/1.0\n"),
            Some(("GET", "/flightrecord?last_us=5000"))
        );
        assert_eq!(
            parse_request_line("POST /events HTTP/1.1\r\n"),
            Some(("POST", "/events"))
        );
        // Shapes that must 400: too few or too many tokens, a target
        // that is not origin-form, a version that is not HTTP.
        assert_eq!(parse_request_line("GET /metrics\r\n"), None);
        assert_eq!(parse_request_line("GET /metrics HTTP/1.1 extra\r\n"), None);
        assert_eq!(parse_request_line("GET metrics HTTP/1.1\r\n"), None);
        assert_eq!(parse_request_line("GET /metrics SPDY/3\r\n"), None);
        assert_eq!(parse_request_line("{\"app\":\"tm\"}\r\n"), None);
    }

    #[test]
    fn edge_ids_round_trip_exactly_through_json_numbers() {
        // Wire ids travel as f64; every edge id must survive the trip.
        for seq in [0u64, 1, 2, 1_000_000_007] {
            let id = EDGE_ID_BASE + seq;
            assert_eq!((id as f64) as u64, id, "seq {seq} lost precision");
        }
        // And the space stays disjoint from any feasible record index.
        assert!(EDGE_ID_BASE > u32::MAX as u64 * 1024);
    }
}
