//! Open- and closed-loop load generation over real sockets.
//!
//! The open loop replays a [`pard_workload::RateTrace`] — expanded into
//! a concrete schedule by [`pard_workload::wire_schedule`] — across a
//! configurable number of connections, pacing sends on the wall clock
//! (compressed by `time_scale`, matching the engine's clock). The
//! closed loop keeps every connection saturated with one outstanding
//! request. Both drive the gateway through the typed
//! [`crate::client::Client`] and report the goodput/latency summary the
//! `BENCH_*.json` convention expects.

use std::io;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use pard_workload::{wire_schedule, PayloadSpec, RateTrace, WireEvent};

use crate::client::{Answer, CallSpec, Client, Outcome};
use crate::wire;

/// Virtual time a paced replay flushes past its final arrival so the
/// whole tail (including late completions) resolves before `finish`.
const VIRTUAL_FLUSH_MARGIN_US: u64 = 120_000_000;

/// Driving discipline.
#[derive(Clone, Debug)]
pub enum LoadMode {
    /// Replay `trace` arrivals on schedule regardless of responses.
    Open {
        /// The request-rate envelope to replay.
        trace: RateTrace,
    },
    /// One outstanding request per connection, sent back-to-back.
    Closed {
        /// Requests each connection issues.
        requests_per_connection: usize,
    },
}

/// How an open-loop replay keeps its schedule.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Pace {
    /// Sleep on the wall clock until each arrival is due (compressed by
    /// `time_scale`) — the realistic discipline for live engines.
    #[default]
    Wall,
    /// Stamp each request with its scheduled virtual arrival (`at_us`)
    /// and send as fast as the socket allows: a stepped engine paces
    /// its own clock to the schedule, so the replay is deterministic
    /// and runs at simulation speed. Forces a single connection (the
    /// engine requires arrivals in schedule order); live engines
    /// ignore the stamps and see a burst.
    Virtual,
}

/// Load-generator configuration.
#[derive(Clone, Debug)]
pub struct LoadgenConfig {
    /// Target application name.
    pub app: String,
    /// Parallel TCP connections.
    pub connections: usize,
    /// Driving discipline.
    pub mode: LoadMode,
    /// Per-request SLO (ms); `None` uses the server default.
    pub slo_ms: Option<u64>,
    /// Fraction of requests sent with a deliberately infeasible 1 ms
    /// SLO — an admission-path canary that makes edge rejections
    /// observable even when the pipeline is underloaded. Set to 0.0 to
    /// disable.
    pub tight_fraction: f64,
    /// Payload-size envelope.
    pub payload: PayloadSpec,
    /// Virtual seconds per wall second; must match the engine's scale
    /// for open-loop pacing and latency conversion (use 1.0 for the
    /// simulator backend, whose virtual clock is self-paced).
    pub time_scale: f64,
    /// Open-loop pacing discipline (wall-clock sleep vs. virtual-time
    /// stamps); ignored in closed-loop mode.
    pub pace: Pace,
    /// Seed for schedule expansion and canary selection.
    pub seed: u64,
}

impl Default for LoadgenConfig {
    fn default() -> LoadgenConfig {
        LoadgenConfig {
            app: "tm".into(),
            connections: 4,
            mode: LoadMode::Closed {
                requests_per_connection: 50,
            },
            slo_ms: None,
            tight_fraction: 0.05,
            payload: PayloadSpec::default(),
            time_scale: 1.0,
            pace: Pace::default(),
            seed: 42,
        }
    }
}

/// Aggregated results of one load-generation run.
#[derive(Clone, Debug, Default)]
pub struct LoadgenReport {
    /// Requests put on the wire.
    pub sent: usize,
    /// Completed within SLO.
    pub ok: usize,
    /// Completed after the deadline.
    pub violated: usize,
    /// Rejected proactively at the gateway edge.
    pub dropped_edge: usize,
    /// Dropped inside the pipeline after admission.
    pub dropped_pipeline: usize,
    /// Protocol errors and unparseable responses.
    pub errors: usize,
    /// Requests with no response before the drain deadline.
    pub unanswered: usize,
    /// Wall-clock run time, seconds.
    pub elapsed_s: f64,
    /// Virtual end-to-end latencies (ms) of completed requests,
    /// client-measured (includes the network path).
    pub latencies_ms: Vec<f64>,
    /// The virtual-time compression the run used.
    pub time_scale: f64,
}

impl LoadgenReport {
    /// Goodput in requests per *virtual* second.
    pub fn goodput_rps(&self) -> f64 {
        if self.elapsed_s <= 0.0 {
            0.0
        } else {
            self.ok as f64 / (self.elapsed_s * self.time_scale)
        }
    }

    /// The `p`-quantile (0–1) of completed-request latency, ms —
    /// linear-interpolated, matching every simulator-side quantile.
    pub fn latency_quantile(&self, p: f64) -> f64 {
        pard_metrics::stats::quantile(&self.latencies_ms, p)
    }

    /// The p50/p95/p99 family in one pass (one sort, not one per
    /// quantile — the latency vector can hold every completed request
    /// of a long run).
    fn latency_summary(&self) -> (f64, f64, f64) {
        let qs = pard_metrics::stats::quantiles(&self.latencies_ms, &[0.50, 0.95, 0.99]);
        (qs[0], qs[1], qs[2])
    }

    /// One-line JSON record in the `BENCH_*.json` convention.
    pub fn to_json(&self, app: &str, mode: &str, connections: usize) -> String {
        use pard_pipeline::json::Value;
        use std::collections::BTreeMap;
        let mut map = BTreeMap::new();
        let mut put = |k: &str, v: Value| map.insert(k.to_string(), v);
        put("bench", Value::String("gateway".into()));
        put("app", Value::String(app.into()));
        put("mode", Value::String(mode.into()));
        put("connections", Value::Number(connections as f64));
        put("sent", Value::Number(self.sent as f64));
        put("ok", Value::Number(self.ok as f64));
        put("violated", Value::Number(self.violated as f64));
        put("dropped_edge", Value::Number(self.dropped_edge as f64));
        put(
            "dropped_pipeline",
            Value::Number(self.dropped_pipeline as f64),
        );
        put("errors", Value::Number(self.errors as f64));
        put("unanswered", Value::Number(self.unanswered as f64));
        put("elapsed_s", Value::Number(self.elapsed_s));
        put("goodput_rps", Value::Number(self.goodput_rps()));
        let (p50, p95, p99) = self.latency_summary();
        put("p50_ms", Value::Number(p50));
        put("p95_ms", Value::Number(p95));
        put("p99_ms", Value::Number(p99));
        Value::Object(map).to_json()
    }

    /// Human-readable summary block.
    pub fn render(&self) -> String {
        let (p50, p95, p99) = self.latency_summary();
        format!(
            "sent {}  ok {} ({:.1}%)  violated {}  dropped: edge {} / pipeline {}  errors {}  unanswered {}\n\
             goodput {:.1} req/s (virtual)  latency p50 {:.1} ms  p95 {:.1} ms  p99 {:.1} ms  elapsed {:.2}s wall\n",
            self.sent,
            self.ok,
            100.0 * self.ok as f64 / self.sent.max(1) as f64,
            self.violated,
            self.dropped_edge,
            self.dropped_pipeline,
            self.errors,
            self.unanswered,
            self.goodput_rps(),
            p50,
            p95,
            p99,
            self.elapsed_s,
        )
    }
}

#[derive(Default)]
struct Accum {
    ok: usize,
    violated: usize,
    dropped_edge: usize,
    dropped_pipeline: usize,
    errors: usize,
    latencies_ms: Vec<f64>,
}

impl Accum {
    /// Records one typed answer. Completed-request latency is the
    /// client-measured RTT converted to virtual milliseconds.
    fn record(&mut self, answer: &Answer, time_scale: f64) {
        let virtual_latency_ms = answer.rtt.as_secs_f64() * 1e3 * time_scale;
        match &answer.outcome {
            Outcome::Ok { .. } => {
                self.ok += 1;
                self.latencies_ms.push(virtual_latency_ms);
            }
            Outcome::Violated { .. } => {
                self.violated += 1;
                self.latencies_ms.push(virtual_latency_ms);
            }
            Outcome::DroppedEdge { .. } => self.dropped_edge += 1,
            Outcome::DroppedPipeline { .. } => self.dropped_pipeline += 1,
            Outcome::Rejected { .. } => self.errors += 1,
        }
    }
}

/// Runs the configured load against `addr` and blocks until every
/// request is answered (or the per-connection drain timeout passes).
pub fn run(addr: SocketAddr, config: &LoadgenConfig) -> io::Result<LoadgenReport> {
    let started = Instant::now();
    let accum = Arc::new(Mutex::new(Accum::default()));
    let mut handles = Vec::new();
    let mut sent_total = 0usize;
    let mut unanswered = 0usize;

    // Virtual pacing requires arrivals in schedule order on one
    // connection — a round-robin split would interleave the stepped
    // clock backwards.
    let forced_single;
    let config = if matches!(
        (&config.mode, config.pace),
        (LoadMode::Open { .. }, Pace::Virtual)
    ) && config.connections != 1
    {
        let mut forced = config.clone();
        forced.connections = 1;
        forced_single = forced;
        &forced_single
    } else {
        config
    };

    match &config.mode {
        LoadMode::Open { trace } => {
            // The schedule's nominal SLO is only a placeholder; the
            // request carries `config.slo_ms` (None = server default).
            let events = wire_schedule(
                trace,
                &config.app,
                config.slo_ms.unwrap_or(400),
                config.payload,
                config.seed,
            );
            // Round-robin split preserving each connection's time order.
            let mut per_conn: Vec<Vec<(u64, WireEvent)>> =
                vec![Vec::new(); config.connections.max(1)];
            for (i, event) in events.into_iter().enumerate() {
                per_conn[i % config.connections.max(1)].push((i as u64, event));
            }
            for events in per_conn {
                let accum = Arc::clone(&accum);
                let config = config.clone();
                handles.push(std::thread::spawn(move || {
                    open_loop_connection(addr, events, &config, accum)
                }));
            }
        }
        LoadMode::Closed {
            requests_per_connection,
        } => {
            let n = *requests_per_connection;
            for conn in 0..config.connections.max(1) {
                let accum = Arc::clone(&accum);
                let config = config.clone();
                handles.push(std::thread::spawn(move || {
                    closed_loop_connection(addr, conn as u64, n, &config, accum)
                }));
            }
        }
    }

    for handle in handles {
        match handle.join() {
            Ok(Ok((sent, missing))) => {
                sent_total += sent;
                unanswered += missing;
            }
            Ok(Err(e)) => return Err(e),
            Err(_) => {
                return Err(io::Error::other(
                    "load generator connection thread panicked",
                ))
            }
        }
    }

    let accum = Arc::try_unwrap(accum)
        .map_err(|_| io::Error::other("accumulator still shared"))?
        .into_inner();
    Ok(LoadgenReport {
        sent: sent_total,
        ok: accum.ok,
        violated: accum.violated,
        dropped_edge: accum.dropped_edge,
        dropped_pipeline: accum.dropped_pipeline,
        errors: accum.errors,
        unanswered,
        elapsed_s: started.elapsed().as_secs_f64(),
        latencies_ms: accum.latencies_ms,
        time_scale: config.time_scale,
    })
}

/// Whether request `seq` is a canary under `fraction` (deterministic,
/// evenly spread).
fn is_canary(seq: u64, fraction: f64) -> bool {
    if fraction <= 0.0 {
        return false;
    }
    let period = (1.0 / fraction).round().max(1.0) as u64;
    seq.is_multiple_of(period)
}

/// The per-request SLO: an infeasible 1 ms for canaries, the configured
/// override otherwise.
fn slo_for(seq: u64, config: &LoadgenConfig) -> Option<u64> {
    if is_canary(seq, config.tight_fraction) {
        Some(1)
    } else {
        config.slo_ms
    }
}

/// Returns `(requests put on the wire, requests sent but unanswered)`.
fn open_loop_connection(
    addr: SocketAddr,
    events: Vec<(u64, WireEvent)>,
    config: &LoadgenConfig,
    accum: Arc<Mutex<Accum>>,
) -> io::Result<(usize, usize)> {
    if events.is_empty() {
        return Ok((0, 0));
    }
    let mut client = Client::connect(addr)?;
    let start = Instant::now();
    let mut last_at = None;
    for (global_seq, event) in events {
        last_at = Some(event.at);
        let mut spec = CallSpec::new(event.app).with_payload_len(event.payload_len);
        match config.pace {
            Pace::Wall => {
                let due = Duration::from_secs_f64(event.at.as_secs_f64() / config.time_scale);
                if let Some(wait) = due.checked_sub(start.elapsed()) {
                    std::thread::sleep(wait);
                }
            }
            // The engine paces itself to the stamped schedule; sending
            // never sleeps.
            Pace::Virtual => spec.at_us = Some(event.at.as_micros()),
        }
        spec.slo_ms = slo_for(global_seq, config);
        client.send(&spec)?;
        // Collect whatever has already been answered; pipelining keeps
        // the schedule honest while responses trickle back.
        while let Some(answer) = client.try_recv() {
            accum.lock().record(&answer, config.time_scale);
        }
    }
    let sent = client.sent();
    // A virtually paced replay flushes the stepped clock well past the
    // last arrival so every in-flight request resolves; without it the
    // clock gate stops at the final scheduled arrival and the tail
    // would never be answered.
    if config.pace == Pace::Virtual {
        if let Some(last) = last_at {
            // Clamped to the wire's cap: an over-limit advance would be
            // rejected and the tail would never resolve.
            let flush = (last.as_micros() + VIRTUAL_FLUSH_MARGIN_US).min(wire::MAX_VIRTUAL_US);
            client.advance(flush)?;
        }
    }
    // Half-close: the server keeps answering already-admitted requests.
    // A generous no-progress deadline still tolerates long response
    // droughts in sparse traces.
    let drained = client.finish(Duration::from_secs(60))?;
    let mut accum = accum.lock();
    for answer in &drained.answers {
        accum.record(answer, config.time_scale);
    }
    Ok((sent, drained.unanswered))
}

/// Returns `(requests put on the wire, requests sent but unanswered)`.
fn closed_loop_connection(
    addr: SocketAddr,
    conn: u64,
    requests: usize,
    config: &LoadgenConfig,
    accum: Arc<Mutex<Accum>>,
) -> io::Result<(usize, usize)> {
    let mut client = Client::connect(addr)?;
    let mut missing = 0usize;
    for i in 0..requests {
        let global_seq = conn * requests as u64 + i as u64;
        let mut spec = CallSpec::new(config.app.clone()).with_payload_len(config.payload.min);
        spec.slo_ms = slo_for(global_seq, config);
        match client.call(&spec, Duration::from_secs(30)) {
            Ok(Some(answer)) => accum.lock().record(&answer, config.time_scale),
            Ok(None) => {
                // Connection died or timed out: the request just sent
                // goes unanswered; the rest were never put on the wire
                // and are not counted.
                missing += 1;
                break;
            }
            Err(e) => return Err(e),
        }
    }
    Ok((client.sent(), missing))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canary_selection_matches_fraction() {
        let hits = (0..1000).filter(|&s| is_canary(s, 0.05)).count();
        assert_eq!(hits, 50);
        assert_eq!((0..1000).filter(|&s| is_canary(s, 0.0)).count(), 0);
        // Fraction 1.0: everything is a canary.
        assert_eq!((0..10).filter(|&s| is_canary(s, 1.0)).count(), 10);
    }

    #[test]
    fn quantiles_of_empty_report_are_zero() {
        let report = LoadgenReport::default();
        assert_eq!(report.latency_quantile(0.5), 0.0);
        assert_eq!(report.goodput_rps(), 0.0);
    }

    #[test]
    fn quantiles_pick_sorted_positions() {
        let report = LoadgenReport {
            latencies_ms: vec![30.0, 10.0, 20.0, 40.0, 50.0],
            ..LoadgenReport::default()
        };
        assert_eq!(report.latency_quantile(0.0), 10.0);
        assert_eq!(report.latency_quantile(0.5), 30.0);
        assert_eq!(report.latency_quantile(1.0), 50.0);
    }

    #[test]
    fn report_json_is_parseable_and_complete() {
        let report = LoadgenReport {
            sent: 10,
            ok: 7,
            violated: 1,
            dropped_edge: 1,
            dropped_pipeline: 1,
            elapsed_s: 2.0,
            time_scale: 1.0,
            latencies_ms: vec![100.0; 8],
            ..LoadgenReport::default()
        };
        let json = report.to_json("tm", "open", 4);
        let value = pard_pipeline::json::parse(&json).expect("valid JSON");
        assert_eq!(value.get("bench").unwrap().as_str(), Some("gateway"));
        assert_eq!(value.get("ok").unwrap().as_u64(), Some(7));
        assert_eq!(value.get("dropped_edge").unwrap().as_u64(), Some(1));
        assert!(value.get("goodput_rps").unwrap().as_f64().unwrap() > 0.0);
        assert_eq!(value.get("p50_ms").unwrap().as_f64(), Some(100.0));
    }
}
