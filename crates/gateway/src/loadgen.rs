//! Open- and closed-loop load generation over real sockets.
//!
//! The open loop replays a [`pard_workload::RateTrace`] — expanded into
//! a concrete schedule by [`pard_workload::wire_schedule`] — across a
//! configurable number of connections, pacing sends on the wall clock
//! (compressed by `time_scale`, matching the engine's clock). The
//! closed loop keeps every connection saturated with one outstanding
//! request. Both drive the gateway through the typed
//! [`crate::client::Client`] and report the goodput/latency summary the
//! `BENCH_*.json` convention expects.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::os::fd::{AsRawFd, RawFd};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use pard_workload::{wire_schedule, PayloadSpec, RateTrace, WireEvent};

use crate::client::{Answer, CallSpec, Client, Outcome, RetryPolicy};
use crate::netpoll;
use crate::wire::{self, Request};

/// Virtual time a paced replay flushes past its final arrival so the
/// whole tail (including late completions) resolves before `finish`.
const VIRTUAL_FLUSH_MARGIN_US: u64 = 120_000_000;

/// Driving discipline.
#[derive(Clone, Debug)]
pub enum LoadMode {
    /// Replay `trace` arrivals on schedule regardless of responses.
    Open {
        /// The request-rate envelope to replay.
        trace: RateTrace,
    },
    /// One outstanding request per connection, sent back-to-back.
    Closed {
        /// Requests each connection issues.
        requests_per_connection: usize,
    },
}

/// How an open-loop replay keeps its schedule.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Pace {
    /// Sleep on the wall clock until each arrival is due (compressed by
    /// `time_scale`) — the realistic discipline for live engines.
    #[default]
    Wall,
    /// Stamp each request with its scheduled virtual arrival (`at_us`)
    /// and send as fast as the socket allows: a stepped engine paces
    /// its own clock to the schedule, so the replay is deterministic
    /// and runs at simulation speed. With more than one connection the
    /// run declares a replay group (`replay_join`) and the gateway
    /// re-serializes the parties' schedules into global `(at_us, seq)`
    /// order; live engines ignore the stamps and see a burst.
    Virtual,
}

/// Load-generator configuration.
#[derive(Clone, Debug)]
pub struct LoadgenConfig {
    /// Target application name — or a comma-separated list; connections
    /// round-robin across the entries, so one run can drive every
    /// tenant of a multi-app gateway.
    pub app: String,
    /// Parallel TCP connections.
    pub connections: usize,
    /// Driving discipline.
    pub mode: LoadMode,
    /// Per-request SLO (ms); `None` uses the server default.
    pub slo_ms: Option<u64>,
    /// Fraction of requests sent with a deliberately infeasible 1 ms
    /// SLO — an admission-path canary that makes edge rejections
    /// observable even when the pipeline is underloaded. Set to 0.0 to
    /// disable.
    pub tight_fraction: f64,
    /// Payload-size envelope.
    pub payload: PayloadSpec,
    /// Virtual seconds per wall second; must match the engine's scale
    /// for open-loop pacing and latency conversion (use 1.0 for the
    /// simulator backend, whose virtual clock is self-paced).
    pub time_scale: f64,
    /// Open-loop pacing discipline (wall-clock sleep vs. virtual-time
    /// stamps); ignored in closed-loop mode.
    pub pace: Pace,
    /// Seed for schedule expansion and canary selection.
    pub seed: u64,
    /// Multiplex every open-loop connection onto one readiness-driven
    /// thread (epoll) instead of a sender/reader thread pair per
    /// connection — the C10K discipline. Wall pacing only; virtual
    /// multi-connection replays go through the replay-group path.
    pub mux: bool,
    /// Closed-loop retry policy for transient back-pressure replies
    /// (`overloaded`, `rate_limited`); `None` treats them as terminal
    /// errors. Retried attempts are counted separately
    /// ([`LoadgenReport::retries`]) so `sent` keeps counting logical
    /// requests and the outcome algebra stays closed.
    pub retry: Option<RetryPolicy>,
}

impl Default for LoadgenConfig {
    fn default() -> LoadgenConfig {
        LoadgenConfig {
            app: "tm".into(),
            connections: 4,
            mode: LoadMode::Closed {
                requests_per_connection: 50,
            },
            slo_ms: None,
            tight_fraction: 0.05,
            payload: PayloadSpec::default(),
            time_scale: 1.0,
            pace: Pace::default(),
            seed: 42,
            mux: false,
            retry: None,
        }
    }
}

/// Aggregated results of one load-generation run.
#[derive(Clone, Debug, Default)]
pub struct LoadgenReport {
    /// Requests put on the wire.
    pub sent: usize,
    /// Completed within SLO.
    pub ok: usize,
    /// Completed after the deadline.
    pub violated: usize,
    /// Rejected proactively at the gateway edge.
    pub dropped_edge: usize,
    /// Dropped inside the pipeline after admission.
    pub dropped_pipeline: usize,
    /// Protocol errors and unparseable responses.
    pub errors: usize,
    /// Extra wire attempts spent retrying transient back-pressure
    /// (closed loop with a [`RetryPolicy`]); not counted in `sent`, so
    /// `sent == ok + violated + dropped + errors + unanswered` holds
    /// with or without retries.
    pub retries: usize,
    /// Requests with no response before the drain deadline.
    pub unanswered: usize,
    /// Wall-clock run time, seconds.
    pub elapsed_s: f64,
    /// Virtual end-to-end latencies (ms) of completed requests,
    /// client-measured (includes the network path).
    pub latencies_ms: Vec<f64>,
    /// The virtual-time compression the run used.
    pub time_scale: f64,
}

impl LoadgenReport {
    /// Goodput in requests per *virtual* second.
    pub fn goodput_rps(&self) -> f64 {
        if self.elapsed_s <= 0.0 {
            0.0
        } else {
            self.ok as f64 / (self.elapsed_s * self.time_scale)
        }
    }

    /// The `p`-quantile (0–1) of completed-request latency, ms —
    /// linear-interpolated, matching every simulator-side quantile.
    pub fn latency_quantile(&self, p: f64) -> f64 {
        pard_metrics::stats::quantile(&self.latencies_ms, p)
    }

    /// The p50/p95/p99 family in one pass (one sort, not one per
    /// quantile — the latency vector can hold every completed request
    /// of a long run).
    fn latency_summary(&self) -> (f64, f64, f64) {
        let qs = pard_metrics::stats::quantiles(&self.latencies_ms, &[0.50, 0.95, 0.99]);
        (qs[0], qs[1], qs[2])
    }

    /// One-line JSON record in the `BENCH_*.json` convention.
    pub fn to_json(&self, app: &str, mode: &str, connections: usize) -> String {
        use pard_pipeline::json::Value;
        use std::collections::BTreeMap;
        let mut map = BTreeMap::new();
        let mut put = |k: &str, v: Value| map.insert(k.to_string(), v);
        put("bench", Value::String("gateway".into()));
        put("app", Value::String(app.into()));
        put("mode", Value::String(mode.into()));
        put("connections", Value::Number(connections as f64));
        put("sent", Value::Number(self.sent as f64));
        put("ok", Value::Number(self.ok as f64));
        put("violated", Value::Number(self.violated as f64));
        put("dropped_edge", Value::Number(self.dropped_edge as f64));
        put(
            "dropped_pipeline",
            Value::Number(self.dropped_pipeline as f64),
        );
        put("errors", Value::Number(self.errors as f64));
        put("retries", Value::Number(self.retries as f64));
        put("unanswered", Value::Number(self.unanswered as f64));
        put("elapsed_s", Value::Number(self.elapsed_s));
        put("goodput_rps", Value::Number(self.goodput_rps()));
        let (p50, p95, p99) = self.latency_summary();
        put("p50_ms", Value::Number(p50));
        put("p95_ms", Value::Number(p95));
        put("p99_ms", Value::Number(p99));
        Value::Object(map).to_json()
    }

    /// Human-readable summary block.
    pub fn render(&self) -> String {
        let (p50, p95, p99) = self.latency_summary();
        format!(
            "sent {}  ok {} ({:.1}%)  violated {}  dropped: edge {} / pipeline {}  errors {}  retries {}  unanswered {}\n\
             goodput {:.1} req/s (virtual)  latency p50 {:.1} ms  p95 {:.1} ms  p99 {:.1} ms  elapsed {:.2}s wall\n",
            self.sent,
            self.ok,
            100.0 * self.ok as f64 / self.sent.max(1) as f64,
            self.violated,
            self.dropped_edge,
            self.dropped_pipeline,
            self.errors,
            self.retries,
            self.unanswered,
            self.goodput_rps(),
            p50,
            p95,
            p99,
            self.elapsed_s,
        )
    }
}

#[derive(Default)]
struct Accum {
    ok: usize,
    violated: usize,
    dropped_edge: usize,
    dropped_pipeline: usize,
    errors: usize,
    retries: usize,
    latencies_ms: Vec<f64>,
}

impl Accum {
    /// Records one typed answer. Completed-request latency is the
    /// client-measured RTT converted to virtual milliseconds.
    fn record(&mut self, answer: &Answer, time_scale: f64) {
        let virtual_latency_ms = answer.rtt.as_secs_f64() * 1e3 * time_scale;
        match &answer.outcome {
            Outcome::Ok { .. } => {
                self.ok += 1;
                self.latencies_ms.push(virtual_latency_ms);
            }
            Outcome::Violated { .. } => {
                self.violated += 1;
                self.latencies_ms.push(virtual_latency_ms);
            }
            Outcome::DroppedEdge { .. } => self.dropped_edge += 1,
            Outcome::DroppedPipeline { .. } => self.dropped_pipeline += 1,
            Outcome::Rejected { .. } => self.errors += 1,
        }
    }
}

/// Runs the configured load against `addr` and blocks until every
/// request is answered (or the per-connection drain timeout passes).
pub fn run(addr: SocketAddr, config: &LoadgenConfig) -> io::Result<LoadgenReport> {
    let started = Instant::now();
    let accum = Arc::new(Mutex::new(Accum::default()));
    let mut handles = Vec::new();
    let mut sent_total = 0usize;
    let mut unanswered = 0usize;

    // `app` may be a comma-separated list; each connection speaks one
    // entry, round-robin, so a single run loads every tenant of a
    // multi-app gateway.
    let apps: Vec<String> = config
        .app
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(String::from)
        .collect();
    if apps.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "no app name configured",
        ));
    }

    match &config.mode {
        LoadMode::Open { trace } => {
            let connections = config.connections.max(1);
            // The schedule's nominal SLO is only a placeholder; the
            // request carries `config.slo_ms` (None = server default).
            let events = wire_schedule(
                trace,
                &apps[0],
                config.slo_ms.unwrap_or(400),
                config.payload,
                config.seed,
            );
            // Arrivals are non-decreasing, so the global flush horizon
            // sits strictly past the last of them (margin > 0).
            let horizon_us = events
                .last()
                .map(|e| (e.at.as_micros() + VIRTUAL_FLUSH_MARGIN_US).min(wire::MAX_VIRTUAL_US))
                .unwrap_or(0);
            // Round-robin split preserving each connection's time order.
            let mut per_conn: Vec<Vec<(u64, WireEvent)>> = vec![Vec::new(); connections];
            for (i, mut event) in events.into_iter().enumerate() {
                let conn = i % connections;
                event.app.clone_from(&apps[conn % apps.len()]);
                per_conn[conn].push((i as u64, event));
            }
            if config.mux && config.pace == Pace::Wall {
                let (sent, missing) = run_open_mux(addr, per_conn, config, &accum)?;
                sent_total += sent;
                unanswered += missing;
            } else {
                // A multi-connection virtual replay declares a replay
                // group: the gateway re-serializes the parties into
                // global schedule order, so the split stays
                // deterministic.
                let grouped = config.pace == Pace::Virtual && connections > 1;
                for (party, events) in per_conn.into_iter().enumerate() {
                    let accum = Arc::clone(&accum);
                    let config = config.clone();
                    let replay = grouped.then_some(ReplayPlan {
                        parties: connections as u64,
                        party: party as u64,
                        horizon_us,
                    });
                    handles.push(std::thread::spawn(move || {
                        open_loop_connection(addr, events, &config, accum, replay)
                    }));
                }
            }
        }
        LoadMode::Closed {
            requests_per_connection,
        } => {
            let n = *requests_per_connection;
            for conn in 0..config.connections.max(1) {
                let accum = Arc::clone(&accum);
                let config = config.clone();
                let app = apps[conn % apps.len()].clone();
                handles.push(std::thread::spawn(move || {
                    closed_loop_connection(addr, conn as u64, app, n, &config, accum)
                }));
            }
        }
    }

    for handle in handles {
        match handle.join() {
            Ok(Ok((sent, missing))) => {
                sent_total += sent;
                unanswered += missing;
            }
            Ok(Err(e)) => return Err(e),
            Err(_) => {
                return Err(io::Error::other(
                    "load generator connection thread panicked",
                ))
            }
        }
    }

    let accum = Arc::try_unwrap(accum)
        .map_err(|_| io::Error::other("accumulator still shared"))?
        .into_inner();
    Ok(LoadgenReport {
        sent: sent_total,
        ok: accum.ok,
        violated: accum.violated,
        dropped_edge: accum.dropped_edge,
        dropped_pipeline: accum.dropped_pipeline,
        errors: accum.errors,
        retries: accum.retries,
        unanswered,
        elapsed_s: started.elapsed().as_secs_f64(),
        latencies_ms: accum.latencies_ms,
        time_scale: config.time_scale,
    })
}

/// Whether request `seq` is a canary under `fraction` (deterministic,
/// evenly spread).
fn is_canary(seq: u64, fraction: f64) -> bool {
    if fraction <= 0.0 {
        return false;
    }
    let period = (1.0 / fraction).round().max(1.0) as u64;
    seq.is_multiple_of(period)
}

/// The per-request SLO: an infeasible 1 ms for canaries, the configured
/// override otherwise.
fn slo_for(seq: u64, config: &LoadgenConfig) -> Option<u64> {
    if is_canary(seq, config.tight_fraction) {
        Some(1)
    } else {
        config.slo_ms
    }
}

/// How one open-loop connection participates in a multi-connection
/// deterministic replay.
#[derive(Clone, Debug)]
struct ReplayPlan {
    /// Replay-group size (the run's connection count).
    parties: u64,
    /// This connection's index: its wire seqs start here and stride by
    /// `parties`, so under the round-robin split every seq equals its
    /// global schedule index and the gateway's `(at_us, seq)` ordering
    /// is a pure function of the schedule.
    party: u64,
    /// Global flush horizon (µs), strictly past every party's last
    /// arrival, so every party's trailing advance releases the whole
    /// group's tail.
    horizon_us: u64,
}

/// Returns `(requests put on the wire, requests sent but unanswered)`.
fn open_loop_connection(
    addr: SocketAddr,
    events: Vec<(u64, WireEvent)>,
    config: &LoadgenConfig,
    accum: Arc<Mutex<Accum>>,
    replay: Option<ReplayPlan>,
) -> io::Result<(usize, usize)> {
    if events.is_empty() && replay.is_none() {
        return Ok((0, 0));
    }
    let mut client = Client::connect(addr)?;
    // Group membership is declared before any scheduled line; an empty
    // slice still joins (and flushes), otherwise the group would never
    // complete and every other party would stall.
    if let Some(plan) = &replay {
        client.set_seq_stride(plan.party, plan.parties);
        client.replay_join(plan.parties)?;
    }
    let start = Instant::now();
    let mut last_at = None;
    for (global_seq, event) in events {
        last_at = Some(event.at);
        let mut spec = CallSpec::new(event.app).with_payload_len(event.payload_len);
        match config.pace {
            Pace::Wall => {
                let due = Duration::from_secs_f64(event.at.as_secs_f64() / config.time_scale);
                if let Some(wait) = due.checked_sub(start.elapsed()) {
                    std::thread::sleep(wait);
                }
            }
            // The engine paces itself to the stamped schedule; sending
            // never sleeps.
            Pace::Virtual => spec.at_us = Some(event.at.as_micros()),
        }
        spec.slo_ms = slo_for(global_seq, config);
        client.send(&spec)?;
        // Collect whatever has already been answered; pipelining keeps
        // the schedule honest while responses trickle back.
        while let Some(answer) = client.try_recv() {
            accum.lock().record(&answer, config.time_scale);
        }
    }
    let sent = client.sent();
    // A virtually paced replay flushes the stepped clock well past the
    // last arrival so every in-flight request resolves; without it the
    // clock gate stops at the final scheduled arrival and the tail
    // would never be answered.
    if config.pace == Pace::Virtual {
        // A replay-group member flushes to the *global* horizon (its
        // own slice's tail is not past the other parties' arrivals); a
        // lone connection flushes past its own last arrival. Clamped to
        // the wire's cap either way: an over-limit advance would be
        // rejected and the tail would never resolve.
        let flush = match &replay {
            Some(plan) => Some(plan.horizon_us),
            None => last_at
                .map(|last| (last.as_micros() + VIRTUAL_FLUSH_MARGIN_US).min(wire::MAX_VIRTUAL_US)),
        };
        if let Some(flush) = flush {
            client.advance(flush)?;
        }
    }
    // Half-close: the server keeps answering already-admitted requests.
    // A generous no-progress deadline still tolerates long response
    // droughts in sparse traces.
    let drained = client.finish(Duration::from_secs(60))?;
    let mut accum = accum.lock();
    for answer in &drained.answers {
        accum.record(answer, config.time_scale);
    }
    Ok((sent, drained.unanswered))
}

/// Returns `(requests put on the wire, requests sent but unanswered)`.
fn closed_loop_connection(
    addr: SocketAddr,
    conn: u64,
    app: String,
    requests: usize,
    config: &LoadgenConfig,
    accum: Arc<Mutex<Accum>>,
) -> io::Result<(usize, usize)> {
    let mut client = Client::connect(addr)?;
    let mut missing = 0usize;
    // Each connection gets its own jitter stream forked from the
    // policy seed, so runs back off identically regardless of how the
    // OS interleaves the connection threads.
    let mut rng = config.retry.map(|policy| policy.rng().fork(conn));
    let mut retries = 0usize;
    let timeout = Duration::from_secs(30);
    for i in 0..requests {
        let global_seq = conn * requests as u64 + i as u64;
        let mut spec = CallSpec::new(app.clone()).with_payload_len(config.payload.min);
        spec.slo_ms = slo_for(global_seq, config);
        let answer = match (&config.retry, &mut rng) {
            (Some(policy), Some(rng)) => {
                let (answer, spent) = client.call_retry(&spec, timeout, policy, rng)?;
                retries += spent as usize;
                answer
            }
            _ => client.call(&spec, timeout)?,
        };
        match answer {
            Some(answer) => accum.lock().record(&answer, config.time_scale),
            None => {
                // Connection died or timed out: the request just sent
                // goes unanswered; the rest were never put on the wire
                // and are not counted.
                missing += 1;
                break;
            }
        }
    }
    accum.lock().retries += retries;
    // `sent` counts logical requests: retried attempts are reported
    // separately, keeping the outcome algebra closed.
    Ok((client.sent() - retries, missing))
}

// ---------------------------------------------------------------------------
// The multiplexed C10K driver
// ---------------------------------------------------------------------------

/// One multiplexed connection's state.
struct MuxConn {
    stream: TcpStream,
    fd: RawFd,
    /// Unparsed response bytes (partial lines across reads).
    rbuf: Vec<u8>,
    /// Encoded-but-unflushed request bytes.
    out: Vec<u8>,
    out_pos: usize,
    /// WRITABLE interest is currently registered.
    want_write: bool,
    /// The connection failed or saw EOF; its outstanding requests
    /// surface as unanswered.
    dead: bool,
    /// All sends done and flushed; the write half is shut down.
    half_closed: bool,
}

/// Connects with brief retries: a kernel listen backlog overflows long
/// before ten thousand connects complete, and a refused/reset connect
/// during the ramp is congestion, not failure.
fn connect_with_retry(addr: SocketAddr) -> io::Result<TcpStream> {
    let mut last = None;
    for _ in 0..200 {
        match TcpStream::connect(addr) {
            Ok(stream) => return Ok(stream),
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::ConnectionRefused
                        | io::ErrorKind::ConnectionReset
                        | io::ErrorKind::AddrNotAvailable
                ) =>
            {
                last = Some(e);
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) => return Err(e),
        }
    }
    Err(last.unwrap_or_else(|| io::Error::other("connect retries exhausted")))
}

/// Writes as much buffered output as the socket accepts, toggling
/// WRITABLE interest to match what remains.
fn mux_flush(poller: &netpoll::Poller, token: u64, conn: &mut MuxConn) {
    while conn.out_pos < conn.out.len() {
        match conn.stream.write(&conn.out[conn.out_pos..]) {
            Ok(0) => {
                conn.dead = true;
                return;
            }
            Ok(n) => conn.out_pos += n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.dead = true;
                return;
            }
        }
    }
    if conn.out_pos == conn.out.len() {
        conn.out.clear();
        conn.out_pos = 0;
        if conn.want_write {
            conn.want_write = false;
            let _ = poller.modify(conn.fd, token, netpoll::READABLE);
        }
    } else if !conn.want_write {
        conn.want_write = true;
        let _ = poller.modify(conn.fd, token, netpoll::READABLE | netpoll::WRITABLE);
    }
}

/// The readiness-multiplexed open-loop driver: every connection on one
/// thread behind a [`netpoll::Poller`], so a C10K-scale run costs one
/// poller and N sockets instead of 2·N sender/reader threads. Wall
/// pacing only — a multi-connection *virtual* replay needs the
/// replay-group path, which is about ordering, not thread thrift.
///
/// Returns `(requests put on the wire, requests sent but unanswered)`.
fn run_open_mux(
    addr: SocketAddr,
    per_conn: Vec<Vec<(u64, WireEvent)>>,
    config: &LoadgenConfig,
    accum: &Mutex<Accum>,
) -> io::Result<(usize, usize)> {
    // Re-interleave the split back into global schedule order: the
    // sender walks one due-ordered cursor, not N.
    let mut schedule: Vec<(u64, usize, WireEvent)> = Vec::new();
    for (conn, events) in per_conn.iter().enumerate() {
        for (seq, event) in events {
            schedule.push((*seq, conn, event.clone()));
        }
    }
    schedule.sort_unstable_by_key(|&(seq, _, _)| seq);

    let poller = netpoll::Poller::new()?;
    let mut conns = Vec::with_capacity(per_conn.len());
    for token in 0..per_conn.len() {
        let stream = connect_with_retry(addr)?;
        stream.set_nodelay(true)?;
        stream.set_nonblocking(true)?;
        let fd = stream.as_raw_fd();
        poller.add(fd, token as u64, netpoll::READABLE)?;
        conns.push(MuxConn {
            stream,
            fd,
            rbuf: Vec::new(),
            out: Vec::new(),
            out_pos: 0,
            want_write: false,
            dead: false,
            half_closed: false,
        });
    }

    let start = Instant::now();
    let mut sent_at: HashMap<u64, Instant> = HashMap::new();
    let mut sent_total = 0usize;
    let mut cursor = 0usize;
    let mut events = Vec::new();
    let mut line_buf = String::new();
    let mut tmp = [0u8; 16 * 1024];
    let mut last_progress = Instant::now();

    loop {
        // Put every due request on the wire (a dead connection's
        // schedule slice is skipped; those requests were never sent).
        let now = start.elapsed();
        while let Some((seq, conn_idx, event)) = schedule.get(cursor) {
            let due = Duration::from_secs_f64(event.at.as_secs_f64() / config.time_scale);
            if due > now {
                break;
            }
            let conn = &mut conns[*conn_idx];
            if !conn.dead {
                let request = Request {
                    app: event.app.clone(),
                    slo_ms: slo_for(*seq, config),
                    payload_len: event.payload_len,
                    seq: Some(*seq),
                    at_us: None,
                };
                line_buf.clear();
                request.encode_into(&mut line_buf);
                line_buf.push('\n');
                conn.out.extend_from_slice(line_buf.as_bytes());
                sent_at.insert(*seq, Instant::now());
                sent_total += 1;
                mux_flush(&poller, *conn_idx as u64, conn);
                if conn.dead {
                    let _ = poller.delete(conn.fd);
                }
            }
            cursor += 1;
        }

        if cursor == schedule.len() {
            // Half-close each flushed connection: the server keeps
            // answering already-sent requests, and its close sweep
            // waits for the last reply to flush.
            for conn in conns.iter_mut() {
                if !conn.dead && !conn.half_closed && conn.out_pos == conn.out.len() {
                    let _ = conn.stream.shutdown(Shutdown::Write);
                    conn.half_closed = true;
                }
            }
            if sent_at.is_empty()
                || conns.iter().all(|c| c.dead)
                || last_progress.elapsed() > Duration::from_secs(60)
            {
                break;
            }
        }

        // Sleep until the next arrival is due, capped so answer drains
        // stay responsive under sparse schedules.
        let timeout_ms = match schedule.get(cursor) {
            Some((_, _, event)) => {
                let due = Duration::from_secs_f64(event.at.as_secs_f64() / config.time_scale);
                due.checked_sub(start.elapsed())
                    .map(|d| (d.as_millis() as i32).min(50))
                    .unwrap_or(0)
            }
            None => 50,
        };
        events.clear();
        poller.wait(&mut events, Some(timeout_ms))?;

        for event in &events {
            let idx = event.token as usize;
            let Some(conn) = conns.get_mut(idx) else {
                continue;
            };
            if conn.dead {
                continue;
            }
            if event.is_writable() && conn.out_pos < conn.out.len() {
                mux_flush(&poller, event.token, conn);
            }
            if event.is_readable() {
                loop {
                    match conn.stream.read(&mut tmp) {
                        Ok(0) => {
                            conn.dead = true;
                            break;
                        }
                        Ok(n) => {
                            conn.rbuf.extend_from_slice(&tmp[..n]);
                            if n < tmp.len() {
                                break;
                            }
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                        Err(_) => {
                            conn.dead = true;
                            break;
                        }
                    }
                }
                // Decode every complete line; correlation is global
                // (seqs are unique across the whole run).
                let mut start_pos = 0usize;
                while let Some(nl) = conn.rbuf[start_pos..].iter().position(|&b| b == b'\n') {
                    let line = String::from_utf8_lossy(&conn.rbuf[start_pos..start_pos + nl]);
                    let trimmed = line.trim();
                    if !trimmed.is_empty() {
                        let (seq, outcome) = crate::client::decode_answer_line(trimmed);
                        if let Some(seq) = seq {
                            if let Some(t0) = sent_at.remove(&seq) {
                                accum.lock().record(
                                    &Answer {
                                        seq,
                                        outcome,
                                        rtt: t0.elapsed(),
                                    },
                                    config.time_scale,
                                );
                                last_progress = Instant::now();
                            }
                        }
                    }
                    start_pos += nl + 1;
                }
                conn.rbuf.drain(..start_pos);
            }
            if conn.dead {
                let _ = poller.delete(conn.fd);
            }
        }
    }

    Ok((sent_total, sent_at.len()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canary_selection_matches_fraction() {
        let hits = (0..1000).filter(|&s| is_canary(s, 0.05)).count();
        assert_eq!(hits, 50);
        assert_eq!((0..1000).filter(|&s| is_canary(s, 0.0)).count(), 0);
        // Fraction 1.0: everything is a canary.
        assert_eq!((0..10).filter(|&s| is_canary(s, 1.0)).count(), 10);
    }

    #[test]
    fn quantiles_of_empty_report_are_zero() {
        let report = LoadgenReport::default();
        assert_eq!(report.latency_quantile(0.5), 0.0);
        assert_eq!(report.goodput_rps(), 0.0);
    }

    #[test]
    fn quantiles_pick_sorted_positions() {
        let report = LoadgenReport {
            latencies_ms: vec![30.0, 10.0, 20.0, 40.0, 50.0],
            ..LoadgenReport::default()
        };
        assert_eq!(report.latency_quantile(0.0), 10.0);
        assert_eq!(report.latency_quantile(0.5), 30.0);
        assert_eq!(report.latency_quantile(1.0), 50.0);
    }

    #[test]
    fn report_json_is_parseable_and_complete() {
        let report = LoadgenReport {
            sent: 10,
            ok: 7,
            violated: 1,
            dropped_edge: 1,
            dropped_pipeline: 1,
            elapsed_s: 2.0,
            time_scale: 1.0,
            latencies_ms: vec![100.0; 8],
            ..LoadgenReport::default()
        };
        let json = report.to_json("tm", "open", 4);
        let value = pard_pipeline::json::parse(&json).expect("valid JSON");
        assert_eq!(value.get("bench").unwrap().as_str(), Some("gateway"));
        assert_eq!(value.get("ok").unwrap().as_u64(), Some(7));
        assert_eq!(value.get("dropped_edge").unwrap().as_u64(), Some(1));
        assert!(value.get("goodput_rps").unwrap().as_f64().unwrap() > 0.0);
        assert_eq!(value.get("p50_ms").unwrap().as_f64(), Some(100.0));
    }
}
