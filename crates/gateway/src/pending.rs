//! The sharded pending-request table.
//!
//! Every admitted request lives in this table between `submit` and its
//! completion. A single `Mutex<HashMap>` here serialises *every*
//! submit against *every* completion — under many connections the
//! gateway's whole request path funnels through one cache line. The
//! table is therefore split into [`SHARDS`] independently locked
//! shards keyed by request id (multiplicative hashing; ids are dense
//! engine-assigned integers plus the disjoint edge-id space), so
//! submits and completions on different requests almost never contend.
//! In-shard maps use an FxHash-style hasher: SipHash's DoS resistance
//! buys nothing for server-assigned integer keys and costs a
//! per-operation hashing round.
//!
//! # The insert/complete race
//!
//! The old global-lock design closed one real race: the reader thread
//! held the table lock *across* `submit`, so a completion (which can
//! fire on an engine thread before `submit` even returns) could not be
//! routed until the entry existed. Sharding cannot pre-lock the right
//! shard — the shard is keyed by the id `submit` returns. Instead each
//! shard keeps an `orphans` side-map: a completion that arrives before
//! its entry parks there ([`PendingMap::take_or_stash`]), and the
//! inserting thread claims it atomically under the same shard lock
//! ([`PendingMap::insert`]). Both orders deliver exactly one response;
//! the hammer test below drives both interleavings.
//!
//! Capacity is enforced by a global atomic reservation counter
//! ([`PendingMap::reserve`]), not by locking every shard: the count
//! includes reserved-but-not-yet-inserted requests, which is exactly
//! the back-pressure semantics the old length check had (the request
//! is already on its way into the engine).
//!
//! # Weighted-fair tenant quotas
//!
//! A multi-tenant gateway shares one table between apps, and one
//! flooding tenant must not starve the rest out of the pending
//! capacity. [`PendingMap::with_tenants`] therefore attaches a
//! *guaranteed* slot count to each tenant: a reservation inside the
//! tenant's guarantee always succeeds (up to the global capacity), and
//! a reservation beyond it succeeds only if the table can still honour
//! every other tenant's unused guarantee — the flooding tenant gets
//! all of the unguaranteed headroom, never the polite tenant's
//! reserve. Accounting is per-tenant atomic counters; the guarantee
//! check tolerates the benign races of unlocked reads (a slot may
//! briefly over- or under-admit by the number of in-flight
//! reservations), while the *global* capacity stays exact.
//! [`PendingMap::new`] is the single-tenant special case (one tenant,
//! no guarantee) and preserves the legacy behaviour bit for bit.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;

/// Shard count; a power of two so the shard index is a mask.
pub const SHARDS: usize = 32;

/// Fibonacci-style multiplicative spread of the (dense, sequential)
/// request ids across shards: low bits of consecutive ids would pile
/// neighbouring requests into the same shard cycle, which is fine, but
/// the edge-id space (`1 << 52` upwards) must spread too.
const SPREAD: u64 = 0x9E37_79B9_7F4A_7C15;

/// FxHash-style hasher (the rustc / firefox design): one rotate-xor-
/// multiply per word. Not DoS-resistant — keys here are server-assigned
/// integers, never attacker-chosen.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

/// `BuildHasher` for [`FxHasher`] maps.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

struct Shard<V, C> {
    /// Entry plus the tenant that reserved its slot (so the release on
    /// completion credits the right quota).
    entries: HashMap<u64, (u32, V), FxBuildHasher>,
    /// Completions that arrived before their entry was filed (see the
    /// module docs); claimed by [`PendingMap::insert`].
    orphans: HashMap<u64, C, FxBuildHasher>,
}

impl<V, C> Default for Shard<V, C> {
    fn default() -> Shard<V, C> {
        Shard {
            entries: HashMap::default(),
            orphans: HashMap::default(),
        }
    }
}

/// Sharded id → entry table with orphan parking and atomic capacity
/// reservations. `V` is the per-request entry; `C` the completion
/// payload parked when it beats the insert.
pub struct PendingMap<V, C> {
    shards: Vec<Mutex<Shard<V, C>>>,
    /// Live entries plus outstanding reservations.
    len: AtomicUsize,
    capacity: usize,
    /// Per-tenant guaranteed slot counts (module docs); a single zero
    /// entry in the single-tenant case.
    guaranteed: Vec<usize>,
    /// Per-tenant live entries plus outstanding reservations.
    tenant_counts: Vec<AtomicUsize>,
}

impl<V, C> PendingMap<V, C> {
    /// Creates the table with a global capacity (the gateway's
    /// `max_pending`); single tenant, no guarantee.
    pub fn new(capacity: usize) -> PendingMap<V, C> {
        PendingMap::with_tenants(capacity, vec![0])
    }

    /// Creates the table with per-tenant guaranteed slot counts. The
    /// guarantees must fit inside the capacity; headroom beyond their
    /// sum is shared first-come first-served.
    pub fn with_tenants(capacity: usize, guaranteed: Vec<usize>) -> PendingMap<V, C> {
        assert!(!guaranteed.is_empty(), "at least one tenant");
        assert!(
            guaranteed.iter().sum::<usize>() <= capacity,
            "tenant guarantees exceed the table capacity"
        );
        let tenant_counts = guaranteed.iter().map(|_| AtomicUsize::new(0)).collect();
        PendingMap {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            len: AtomicUsize::new(0),
            capacity,
            guaranteed,
            tenant_counts,
        }
    }

    #[inline]
    fn shard(&self, id: u64) -> &Mutex<Shard<V, C>> {
        let idx = (id.wrapping_mul(SPREAD) >> 32) as usize & (SHARDS - 1);
        &self.shards[idx]
    }

    /// Entries in flight (including reservations not yet inserted).
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }

    /// The configured capacity (the gateway's `max_pending`).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reserves one slot ahead of `submit`; `false` when the table is
    /// at capacity (the caller refuses the request). A successful
    /// reservation must be followed by [`PendingMap::insert`] or
    /// undone with [`PendingMap::cancel_reservation`].
    pub fn reserve(&self) -> bool {
        self.reserve_tenant(0)
    }

    /// Reserves one slot on a tenant's account. Succeeds while the
    /// tenant is inside its guarantee; beyond it, only while the table
    /// can still honour every *other* tenant's unused guarantee.
    pub fn reserve_tenant(&self, tenant: usize) -> bool {
        // Global capacity stays exact: the counter is the arbiter.
        if self.len.fetch_add(1, Ordering::AcqRel) >= self.capacity {
            self.len.fetch_sub(1, Ordering::AcqRel);
            return false;
        }
        let mine = self.tenant_counts[tenant].fetch_add(1, Ordering::AcqRel);
        if mine < self.guaranteed[tenant] {
            return true;
        }
        // Beyond the guarantee: leave room for what other tenants are
        // still owed. Unlocked reads — transient in-flight reservations
        // can refuse a slot a hair early, never steal a guarantee.
        let mut owed_to_others = 0usize;
        for (other, &guarantee) in self.guaranteed.iter().enumerate() {
            if other == tenant {
                continue;
            }
            let used = self.tenant_counts[other].load(Ordering::Acquire);
            owed_to_others += guarantee.saturating_sub(used);
        }
        if owed_to_others == 0 || self.len.load(Ordering::Acquire) <= self.capacity - owed_to_others
        {
            return true;
        }
        self.tenant_counts[tenant].fetch_sub(1, Ordering::AcqRel);
        self.len.fetch_sub(1, Ordering::AcqRel);
        false
    }

    /// Releases a reservation that will not be inserted.
    pub fn cancel_reservation(&self) {
        self.cancel_reservation_tenant(0);
    }

    /// Releases a tenant's reservation that will not be inserted.
    pub fn cancel_reservation_tenant(&self, tenant: usize) {
        self.tenant_counts[tenant].fetch_sub(1, Ordering::AcqRel);
        self.len.fetch_sub(1, Ordering::AcqRel);
    }

    /// Files the entry for a reserved slot. If the completion already
    /// raced past ([`PendingMap::take_or_stash`] parked it), the entry
    /// is *not* stored: the parked completion is returned, the slot
    /// released, and the caller responds immediately.
    pub fn insert(&self, id: u64, entry: V) -> Option<C> {
        self.insert_tenant(id, 0, entry)
    }

    /// Files the entry for a slot reserved on a tenant's account.
    pub fn insert_tenant(&self, id: u64, tenant: usize, entry: V) -> Option<C> {
        let mut shard = self.shard(id).lock();
        if let Some(completion) = shard.orphans.remove(&id) {
            drop(shard);
            self.tenant_counts[tenant].fetch_sub(1, Ordering::AcqRel);
            self.len.fetch_sub(1, Ordering::AcqRel);
            Some(completion)
        } else {
            shard.entries.insert(id, (tenant as u32, entry));
            None
        }
    }

    /// Routes a completion: returns the entry if it is filed (slot
    /// released to the tenant that reserved it); otherwise parks the
    /// completion for the racing [`PendingMap::insert`] to claim. A
    /// completion for an id that was never reserved (e.g. flushed
    /// during shutdown) parks harmlessly — the table is dropped with
    /// the gateway.
    pub fn take_or_stash(&self, id: u64, completion: C) -> Option<V> {
        let mut shard = self.shard(id).lock();
        match shard.entries.remove(&id) {
            Some((tenant, entry)) => {
                drop(shard);
                self.tenant_counts[tenant as usize].fetch_sub(1, Ordering::AcqRel);
                self.len.fetch_sub(1, Ordering::AcqRel);
                Some(entry)
            }
            None => {
                shard.orphans.insert(id, completion);
                None
            }
        }
    }

    /// Entries in flight on a tenant's account (including reservations
    /// not yet inserted).
    pub fn tenant_len(&self, tenant: usize) -> usize {
        self.tenant_counts[tenant].load(Ordering::Acquire)
    }

    /// Removes and returns every filed entry (the shutdown flush).
    /// Outstanding reservations (reserved, not yet inserted) are left
    /// to resolve through [`PendingMap::insert`].
    pub fn drain_entries(&self) -> Vec<(u64, V)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let mut shard = shard.lock();
            for (id, (tenant, entry)) in shard.entries.drain() {
                self.tenant_counts[tenant as usize].fetch_sub(1, Ordering::AcqRel);
                out.push((id, entry));
            }
        }
        self.len.fetch_sub(out.len(), Ordering::AcqRel);
        out
    }

    /// Removes and returns every filed entry whose key satisfies
    /// `pred`, leaving the rest untouched — the single-app flush the
    /// engine watchdog uses when one tenant's engine dies but the
    /// gateway keeps serving the others. Reservations in flight are
    /// left to resolve through [`PendingMap::insert`].
    pub fn drain_matching(&self, pred: impl Fn(u64) -> bool) -> Vec<(u64, V)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let mut shard = shard.lock();
            let matched: Vec<u64> = shard
                .entries
                .keys()
                .copied()
                .filter(|&id| pred(id))
                .collect();
            for id in matched {
                if let Some((tenant, entry)) = shard.entries.remove(&id) {
                    self.tenant_counts[tenant as usize].fetch_sub(1, Ordering::AcqRel);
                    out.push((id, entry));
                }
            }
        }
        self.len.fetch_sub(out.len(), Ordering::AcqRel);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn drain_matching_flushes_only_the_predicate_keys() {
        let map: PendingMap<&'static str, u64> = PendingMap::with_tenants(8, vec![1, 1]);
        assert!(map.reserve_tenant(0));
        assert!(map.reserve_tenant(1));
        assert!(map.reserve_tenant(1));
        assert_eq!(map.insert_tenant(10, 0, "keep"), None);
        assert_eq!(map.insert_tenant(21, 1, "flush-a"), None);
        assert_eq!(map.insert_tenant(22, 1, "flush-b"), None);
        let mut drained = map.drain_matching(|id| id >= 20);
        drained.sort_by_key(|(id, _)| *id);
        assert_eq!(drained, vec![(21, "flush-a"), (22, "flush-b")]);
        assert_eq!(map.len(), 1);
        assert_eq!(map.tenant_len(1), 0, "flushed tenant's account emptied");
        assert_eq!(map.take_or_stash(10, 0), Some("keep"));
    }

    #[test]
    fn insert_then_take_routes_the_entry() {
        let map: PendingMap<&'static str, u64> = PendingMap::new(4);
        assert!(map.reserve());
        assert_eq!(map.insert(7, "entry"), None);
        assert_eq!(map.len(), 1);
        assert_eq!(map.take_or_stash(7, 99), Some("entry"));
        assert!(map.is_empty());
    }

    #[test]
    fn completion_racing_ahead_is_parked_and_claimed() {
        let map: PendingMap<&'static str, u64> = PendingMap::new(4);
        // Completion first (engine resolved before insert ran).
        assert_eq!(map.take_or_stash(7, 99), None);
        assert!(map.reserve());
        // Insert claims the parked completion instead of filing.
        assert_eq!(map.insert(7, "entry"), Some(99));
        assert!(map.is_empty());
        // The entry was never filed.
        assert_eq!(map.take_or_stash(7, 100), None);
    }

    #[test]
    fn capacity_is_enforced_and_reservations_release() {
        let map: PendingMap<(), ()> = PendingMap::new(2);
        assert!(map.reserve());
        assert!(map.reserve());
        assert!(!map.reserve(), "third reservation exceeds capacity");
        map.cancel_reservation();
        assert!(map.reserve(), "released slot is reusable");
        assert_eq!(map.len(), 2);
    }

    #[test]
    fn drain_returns_filed_entries_and_resets_len() {
        let map: PendingMap<u64, ()> = PendingMap::new(64);
        for id in 0..10u64 {
            assert!(map.reserve());
            assert_eq!(map.insert(id * 1_000_003, id), None);
        }
        let mut drained = map.drain_entries();
        drained.sort();
        assert_eq!(drained.len(), 10);
        assert!(map.is_empty());
        assert_eq!(map.drain_entries(), vec![]);
    }

    #[test]
    fn edge_id_space_spreads_across_shards() {
        // Both the dense engine ids and the 2^52 edge-id space must not
        // all land in one shard.
        let map: PendingMap<(), ()> = PendingMap::new(1);
        let mut hit = std::collections::HashSet::new();
        for id in 0..64u64 {
            let shard = map.shard(id) as *const _ as usize;
            hit.insert(shard);
        }
        assert!(hit.len() > SHARDS / 2, "dense ids hit {} shards", hit.len());
        hit.clear();
        for seq in 0..64u64 {
            let shard = map.shard((1 << 52) + seq) as *const _ as usize;
            hit.insert(shard);
        }
        assert!(hit.len() > SHARDS / 2, "edge ids hit {} shards", hit.len());
    }

    #[test]
    fn flooding_tenant_cannot_take_the_polite_tenants_guarantee() {
        // Capacity 10; tenant 0 guaranteed 4, tenant 1 guaranteed 2,
        // 4 slots of shared headroom.
        let map: PendingMap<(), ()> = PendingMap::with_tenants(10, vec![4, 2]);
        // Tenant 0 floods: its guarantee (4) plus the headroom (4) is
        // all it can get — the table refuses the 9th slot because
        // tenant 1 is still owed its 2.
        for taken in 0..8 {
            assert!(map.reserve_tenant(0), "flood slot {taken} fits");
        }
        assert!(!map.reserve_tenant(0), "tenant 1's guarantee is off limits");
        assert_eq!(map.tenant_len(0), 8);
        // The polite tenant's guarantee is still there.
        assert!(map.reserve_tenant(1));
        assert!(map.reserve_tenant(1));
        // Now the table is genuinely full for everyone.
        assert!(!map.reserve_tenant(1));
        assert!(!map.reserve_tenant(0));
        // Releasing a flood slot frees shared headroom for either side.
        map.cancel_reservation_tenant(0);
        assert!(map.reserve_tenant(1), "freed headroom is shared");
    }

    #[test]
    fn tenant_accounting_follows_the_entry_lifecycle() {
        let map: PendingMap<&'static str, u64> = PendingMap::with_tenants(8, vec![2, 2]);
        // Insert + complete releases the right tenant's count.
        assert!(map.reserve_tenant(1));
        assert_eq!(map.insert_tenant(5, 1, "entry"), None);
        assert_eq!(map.tenant_len(1), 1);
        assert_eq!(map.take_or_stash(5, 9), Some("entry"));
        assert_eq!(map.tenant_len(1), 0);
        // The orphan-claim path releases the reserving tenant too.
        assert_eq!(map.take_or_stash(6, 9), None);
        assert!(map.reserve_tenant(1));
        assert_eq!(map.insert_tenant(6, 1, "entry"), Some(9));
        assert_eq!(map.tenant_len(1), 0);
        // Drain credits each entry's own tenant.
        assert!(map.reserve_tenant(0));
        assert!(map.reserve_tenant(1));
        assert_eq!(map.insert_tenant(7, 0, "a"), None);
        assert_eq!(map.insert_tenant(8, 1, "b"), None);
        assert_eq!(map.drain_entries().len(), 2);
        assert_eq!(map.tenant_len(0), 0);
        assert_eq!(map.tenant_len(1), 0);
        assert!(map.is_empty());
    }

    /// The exactly-once hammer: 8 submitter threads race 8 completer
    /// threads over the same id stream, with completers frequently
    /// beating the insert (the orphan path). Every completion must be
    /// routed exactly once — either returned to the completer or
    /// claimed by the inserter — and the table must end empty.
    #[test]
    fn concurrent_submit_and_complete_lose_nothing() {
        const IDS: u64 = 4_000;
        const LANES: u64 = 8;
        let map: Arc<PendingMap<u64, u64>> = Arc::new(PendingMap::new(usize::MAX >> 1));
        let routed = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for lane in 0..LANES {
            // Submitter lane: reserve + insert, claiming raced orphans.
            let submit_map = Arc::clone(&map);
            let submit_routed = Arc::clone(&routed);
            handles.push(std::thread::spawn(move || {
                for id in (lane..IDS).step_by(LANES as usize) {
                    assert!(submit_map.reserve());
                    if let Some(completion) = submit_map.insert(id, id) {
                        assert_eq!(completion, id);
                        submit_routed.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }));
            // Completer lane for the same ids: take or park.
            let complete_map = Arc::clone(&map);
            let complete_routed = Arc::clone(&routed);
            handles.push(std::thread::spawn(move || {
                for id in (lane..IDS).step_by(LANES as usize) {
                    if let Some(entry) = complete_map.take_or_stash(id, id) {
                        assert_eq!(entry, id);
                        complete_routed.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }));
        }
        for handle in handles {
            handle.join().expect("no panics under the hammer");
        }
        assert_eq!(
            routed.load(Ordering::Relaxed),
            IDS,
            "every id routed exactly once"
        );
        assert!(map.is_empty(), "no live entries remain");
    }
}
