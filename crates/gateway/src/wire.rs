//! The newline-delimited JSON wire protocol, version 2.
//!
//! One request per line, one response per line, UTF-8, no framing
//! beyond `\n`. Every line carries a `"v":2` envelope field. Requests:
//!
//! ```text
//! {"v":2,"app":"tm","slo_ms":400,"payload_len":128,"seq":5,"payload":"xx…"}
//! ```
//!
//! `app` and `payload_len` are required. `slo_ms` defaults to the
//! served pipeline's SLO. `seq` is an optional client correlation
//! number echoed back verbatim — responses to pipelined requests may
//! arrive out of order. `payload` is optional; when present its length
//! must match `payload_len` (the gateway parses but does not interpret
//! it). `at_us` is an optional scheduled virtual arrival time
//! (microseconds since engine start) for deterministic trace replay:
//! engines with a stepped clock advance to it before admitting the
//! request, engines without one serve the request on receipt. Replay
//! clients must send `at_us` in non-decreasing order on a single
//! connection, and finish with an [`ClientLine::Advance`] control line
//! (`{"v":2,"advance_us":N}`) so the tail of the schedule resolves.
//! Responses:
//!
//! ```text
//! {"v":2,"id":7,"seq":5,"outcome":"ok","latency_ms":123.4}
//! {"v":2,"id":4503599627370496,"seq":6,"outcome":"dropped","edge":true,"reason":"predicted"}
//! {"v":2,"id":9,"seq":7,"outcome":"violated","latency_ms":512.0}
//! ```
//!
//! `outcome` is `ok` (completed within SLO), `dropped` (removed before
//! completing — at the gateway edge when `edge` is true, inside the
//! pipeline otherwise), or `violated` (completed after its deadline).
//! Requests that cannot be served get a structured error envelope
//! instead of an outcome, with a machine-readable [`ErrorCode`] and the
//! request's `seq` echoed whenever it could be recovered:
//!
//! ```text
//! {"v":2,"error_code":"slo_out_of_range","error":"…","seq":8}
//! ```
//!
//! # Version 1 removal
//!
//! v1 lines (no `"v"` field; bare `{"error":"…"}` envelopes without a
//! code) were accepted for one deprecation release and are now
//! rejected: decoding a v1 line yields a structured
//! [`ErrorCode::Malformed`] error, and the gateway answers it with a
//! v2 `malformed` envelope, echoing `seq` whenever [`seq_hint`] can
//! recover it.

use std::collections::BTreeMap;
use std::fmt;

use pard_pipeline::json::{parse, Value};

/// The protocol version this module encodes.
pub const PROTOCOL_VERSION: u64 = 2;

/// Largest accepted `slo_ms` (one day). The bound exists for arithmetic
/// safety, not policy: client-controlled values far above it would
/// overflow the microsecond deadline math (`ms · 1000` then
/// `now + slo`), panicking in debug builds and silently wrapping in
/// release.
pub const MAX_SLO_MS: u64 = 86_400_000;

/// Largest accepted `at_us` / `advance_us` (seven virtual days). These
/// fields steer a stepped engine's clock, which processes its
/// self-perpetuating per-second bookkeeping events (sync, scaling) all
/// the way to the target while holding the engine lock — so an
/// unbounded client-controlled timestamp would stall the whole gateway
/// on one line. Seven days bounds that walk at a few million events
/// while dwarfing any real replay.
pub const MAX_VIRTUAL_US: u64 = 7 * 86_400_000_000;

/// Machine-readable reason a request was answered with an error
/// envelope instead of an outcome.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ErrorCode {
    /// The line is not a well-formed request (bad JSON, missing or
    /// mistyped fields, unsupported protocol version).
    Malformed,
    /// The `app` field does not name the served pipeline.
    UnknownApp,
    /// The `payload` length does not match the declared `payload_len`.
    PayloadMismatch,
    /// `slo_ms` is outside `[1, MAX_SLO_MS]`.
    SloOutOfRange,
    /// The gateway's pending-request table is full.
    Overloaded,
    /// The gateway is shutting down and no longer admits requests.
    ShuttingDown,
}

impl ErrorCode {
    /// Every code, for exhaustive round-trip tests.
    pub const ALL: [ErrorCode; 6] = [
        ErrorCode::Malformed,
        ErrorCode::UnknownApp,
        ErrorCode::PayloadMismatch,
        ErrorCode::SloOutOfRange,
        ErrorCode::Overloaded,
        ErrorCode::ShuttingDown,
    ];

    /// Wire spelling.
    pub fn label(self) -> &'static str {
        match self {
            ErrorCode::Malformed => "malformed",
            ErrorCode::UnknownApp => "unknown_app",
            ErrorCode::PayloadMismatch => "payload_mismatch",
            ErrorCode::SloOutOfRange => "slo_out_of_range",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::ShuttingDown => "shutting_down",
        }
    }

    /// Inverse of [`ErrorCode::label`].
    pub fn from_label(label: &str) -> Option<ErrorCode> {
        ErrorCode::ALL.into_iter().find(|c| c.label() == label)
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A wire-format violation, carrying the [`ErrorCode`] the server
/// reports for it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireError {
    /// Structured reason.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for WireError {}

fn err(code: ErrorCode, message: impl Into<String>) -> WireError {
    WireError {
        code,
        message: message.into(),
    }
}

/// Checks the `"v"` envelope field: it must be present and equal 2.
/// Absent (a v1 line) or any other value is a wire-format violation —
/// v1 decoding was removed after its one-release deprecation window.
fn check_version(value: &Value) -> Result<(), WireError> {
    match value.get("v") {
        None => Err(err(
            ErrorCode::Malformed,
            "missing protocol version field \"v\" (v1 lines are no longer decoded; speak v2)",
        )),
        Some(v) => match v.as_u64() {
            Some(PROTOCOL_VERSION) => Ok(()),
            _ => Err(err(
                ErrorCode::Malformed,
                format!(
                    "unsupported protocol version {} (this gateway speaks v2 only)",
                    v.to_json()
                ),
            )),
        },
    }
}

/// Best-effort `seq` recovery from a line that failed full decoding —
/// so error envelopes can still be correlated by pipelining clients.
pub fn seq_hint(line: &str) -> Option<u64> {
    parse(line).ok()?.get("seq")?.as_u64()
}

/// Decodes a virtual-time field (`at_us` / `advance_us`): non-negative
/// integer, at most [`MAX_VIRTUAL_US`].
fn bounded_virtual_us(v: &Value, field: &str) -> Result<u64, WireError> {
    let us = v.as_u64().ok_or_else(|| {
        err(
            ErrorCode::Malformed,
            format!("{field:?} must be a non-negative integer"),
        )
    })?;
    if us > MAX_VIRTUAL_US {
        return Err(err(
            ErrorCode::Malformed,
            format!("{field:?} must be at most {MAX_VIRTUAL_US}"),
        ));
    }
    Ok(us)
}

/// A parsed client request.
#[derive(Clone, Debug, PartialEq)]
pub struct Request {
    /// Target application name (must match the served pipeline).
    pub app: String,
    /// Per-request SLO override, milliseconds.
    pub slo_ms: Option<u64>,
    /// Declared payload size, bytes.
    pub payload_len: usize,
    /// Client correlation number, echoed in the response.
    pub seq: Option<u64>,
    /// Scheduled virtual arrival time (µs since engine start) for
    /// deterministic trace replay; stepped engines advance their clock
    /// to it before admission, live engines ignore it.
    pub at_us: Option<u64>,
}

/// One decoded client line: a serving request, or a replay-control
/// line.
#[derive(Clone, Debug, PartialEq)]
pub enum ClientLine {
    /// A serving request.
    Request(Request),
    /// `{"v":2,"advance_us":N}` — steer a stepped engine's virtual
    /// clock to `N` µs since engine start. A replay client sends this
    /// once after its last request so the tail of the schedule
    /// resolves (the clock gate otherwise stops at the last scheduled
    /// arrival); engines without a steerable clock ignore it. The line
    /// gets no response of its own — outcomes of in-flight requests
    /// keep arriving as usual.
    Advance {
        /// Absolute virtual time to advance to, µs since engine start.
        to_us: u64,
    },
}

impl ClientLine {
    /// Decodes one client line.
    pub fn decode(line: &str) -> Result<ClientLine, WireError> {
        let value =
            parse(line).map_err(|e| err(ErrorCode::Malformed, format!("invalid JSON: {e}")))?;
        check_version(&value)?;
        if let Some(v) = value.get("advance_us") {
            // A hybrid line would have its request half silently
            // swallowed (control lines get no response), leaving the
            // client's seq unanswered forever — reject it outright.
            let request_fields = ["app", "seq", "payload_len", "payload", "slo_ms", "at_us"];
            if request_fields.iter().any(|k| value.get(k).is_some()) {
                return Err(err(
                    ErrorCode::Malformed,
                    "a line cannot carry both \"advance_us\" and request fields",
                ));
            }
            let to_us = bounded_virtual_us(v, "advance_us")?;
            return Ok(ClientLine::Advance { to_us });
        }
        Request::from_value(&value).map(ClientLine::Request)
    }

    /// Encodes a replay-control advance line (no trailing newline).
    pub fn encode_advance(to_us: u64) -> String {
        let mut map = BTreeMap::new();
        map.insert("v".into(), Value::Number(PROTOCOL_VERSION as f64));
        map.insert("advance_us".into(), Value::Number(to_us as f64));
        Value::Object(map).to_json()
    }
}

/// Terminal classification carried on the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireOutcome {
    /// Completed within its SLO.
    Ok,
    /// Removed before completing.
    Dropped,
    /// Completed after its deadline.
    Violated,
}

impl WireOutcome {
    /// Wire spelling.
    pub fn label(self) -> &'static str {
        match self {
            WireOutcome::Ok => "ok",
            WireOutcome::Dropped => "dropped",
            WireOutcome::Violated => "violated",
        }
    }

    fn from_label(label: &str) -> Option<WireOutcome> {
        match label {
            "ok" => Some(WireOutcome::Ok),
            "dropped" => Some(WireOutcome::Dropped),
            "violated" => Some(WireOutcome::Violated),
            _ => None,
        }
    }
}

/// A server response carrying an outcome.
#[derive(Clone, Debug, PartialEq)]
pub struct Response {
    /// Server-assigned request id.
    pub id: u64,
    /// Echo of the request's `seq`, if any.
    pub seq: Option<u64>,
    /// Terminal classification.
    pub outcome: WireOutcome,
    /// End-to-end latency for completed requests, milliseconds.
    pub latency_ms: Option<f64>,
    /// For drops: whether the gateway rejected the request at the edge
    /// (true) or the pipeline dropped it after admission (false).
    pub edge: bool,
    /// For drops: the short [`pard_metrics::DropReason`] label.
    pub reason: Option<String>,
}

/// An error envelope the server sent instead of an outcome.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServerError {
    /// Structured reason; `None` when the envelope carries a code this
    /// client does not know (a newer server).
    pub code: Option<ErrorCode>,
    /// Human-readable detail.
    pub message: String,
    /// Echo of the request's `seq`, when the server could recover it.
    pub seq: Option<u64>,
}

/// Anything the server may send on a line: an outcome or an error
/// envelope. The typed client decodes through this.
#[derive(Clone, Debug, PartialEq)]
pub enum Reply {
    /// A terminal outcome for one request.
    Outcome(Response),
    /// A structured (v2) or bare (v1) error envelope.
    Error(ServerError),
}

impl Reply {
    /// Decodes one server line. `Err` means the line itself is not a
    /// valid reply of either protocol version.
    pub fn decode(line: &str) -> Result<Reply, WireError> {
        let value =
            parse(line).map_err(|e| err(ErrorCode::Malformed, format!("invalid JSON: {e}")))?;
        check_version(&value)?;
        if let Some(message) = value.get("error").and_then(Value::as_str) {
            let code = value
                .get("error_code")
                .and_then(Value::as_str)
                .and_then(ErrorCode::from_label);
            return Ok(Reply::Error(ServerError {
                code,
                message: message.to_string(),
                seq: value.get("seq").and_then(Value::as_u64),
            }));
        }
        Ok(Reply::Outcome(Response::from_value(&value)?))
    }

    /// The correlation number, if the reply carries one.
    pub fn seq(&self) -> Option<u64> {
        match self {
            Reply::Outcome(response) => response.seq,
            Reply::Error(error) => error.seq,
        }
    }
}

impl Request {
    /// Encodes to one v2 JSON line (no trailing newline), including a
    /// synthetic payload of `payload_len` bytes.
    pub fn encode(&self) -> String {
        let mut map = BTreeMap::new();
        map.insert("v".into(), Value::Number(PROTOCOL_VERSION as f64));
        map.insert("app".into(), Value::String(self.app.clone()));
        if let Some(slo) = self.slo_ms {
            map.insert("slo_ms".into(), Value::Number(slo as f64));
        }
        map.insert("payload_len".into(), Value::Number(self.payload_len as f64));
        if let Some(seq) = self.seq {
            map.insert("seq".into(), Value::Number(seq as f64));
        }
        if let Some(at_us) = self.at_us {
            map.insert("at_us".into(), Value::Number(at_us as f64));
        }
        map.insert(
            "payload".into(),
            Value::String("x".repeat(self.payload_len)),
        );
        Value::Object(map).to_json()
    }

    /// Decodes one line.
    pub fn decode(line: &str) -> Result<Request, WireError> {
        let value =
            parse(line).map_err(|e| err(ErrorCode::Malformed, format!("invalid JSON: {e}")))?;
        check_version(&value)?;
        Request::from_value(&value)
    }

    fn from_value(value: &Value) -> Result<Request, WireError> {
        let app = value
            .get("app")
            .and_then(Value::as_str)
            .ok_or_else(|| err(ErrorCode::Malformed, "missing string field \"app\""))?
            .to_string();
        let payload_len = value
            .get("payload_len")
            .and_then(Value::as_u64)
            .ok_or_else(|| {
                err(
                    ErrorCode::Malformed,
                    "missing integer field \"payload_len\"",
                )
            })? as usize;
        let slo_ms = match value.get("slo_ms") {
            None => None,
            Some(v) => {
                // A mistyped field is a wire-format bug (Malformed); an
                // integer outside the window is a policy/range rejection
                // (SloOutOfRange). Clients branch on the distinction.
                let ms = v
                    .as_u64()
                    .ok_or_else(|| err(ErrorCode::Malformed, "\"slo_ms\" must be an integer"))?;
                if !(1..=MAX_SLO_MS).contains(&ms) {
                    return Err(err(
                        ErrorCode::SloOutOfRange,
                        format!("\"slo_ms\" must be in [1, {MAX_SLO_MS}]"),
                    ));
                }
                Some(ms)
            }
        };
        let seq = match value.get("seq") {
            None => None,
            Some(v) => Some(v.as_u64().ok_or_else(|| {
                err(
                    ErrorCode::Malformed,
                    "\"seq\" must be a non-negative integer",
                )
            })?),
        };
        let at_us = match value.get("at_us") {
            None => None,
            Some(v) => Some(bounded_virtual_us(v, "at_us")?),
        };
        if let Some(payload) = value.get("payload") {
            let payload = payload
                .as_str()
                .ok_or_else(|| err(ErrorCode::Malformed, "\"payload\" must be a string"))?;
            if payload.len() != payload_len {
                return Err(err(
                    ErrorCode::PayloadMismatch,
                    format!(
                        "payload length {} does not match declared payload_len {payload_len}",
                        payload.len()
                    ),
                ));
            }
        }
        Ok(Request {
            app,
            slo_ms,
            payload_len,
            seq,
            at_us,
        })
    }
}

impl Response {
    /// A within-SLO completion.
    pub fn ok(id: u64, seq: Option<u64>, latency_ms: f64) -> Response {
        Response {
            id,
            seq,
            outcome: WireOutcome::Ok,
            latency_ms: Some(latency_ms),
            edge: false,
            reason: None,
        }
    }

    /// A completion that missed its deadline.
    pub fn violated(id: u64, seq: Option<u64>, latency_ms: f64) -> Response {
        Response {
            id,
            seq,
            outcome: WireOutcome::Violated,
            latency_ms: Some(latency_ms),
            edge: false,
            reason: None,
        }
    }

    /// A drop, at the edge or inside the pipeline.
    pub fn dropped(id: u64, seq: Option<u64>, edge: bool, reason: &str) -> Response {
        Response {
            id,
            seq,
            outcome: WireOutcome::Dropped,
            latency_ms: None,
            edge,
            reason: Some(reason.to_string()),
        }
    }

    /// Encodes to one v2 JSON line (no trailing newline).
    pub fn encode(&self) -> String {
        let mut map = BTreeMap::new();
        map.insert("v".into(), Value::Number(PROTOCOL_VERSION as f64));
        map.insert("id".into(), Value::Number(self.id as f64));
        if let Some(seq) = self.seq {
            map.insert("seq".into(), Value::Number(seq as f64));
        }
        map.insert("outcome".into(), Value::String(self.outcome.label().into()));
        if let Some(latency) = self.latency_ms {
            map.insert("latency_ms".into(), Value::Number(latency));
        }
        if self.edge {
            map.insert("edge".into(), Value::Bool(true));
        }
        if let Some(reason) = &self.reason {
            map.insert("reason".into(), Value::String(reason.clone()));
        }
        Value::Object(map).to_json()
    }

    fn from_value(value: &Value) -> Result<Response, WireError> {
        let id = value
            .get("id")
            .and_then(Value::as_u64)
            .ok_or_else(|| err(ErrorCode::Malformed, "missing integer field \"id\""))?;
        let outcome = value
            .get("outcome")
            .and_then(Value::as_str)
            .and_then(WireOutcome::from_label)
            .ok_or_else(|| err(ErrorCode::Malformed, "missing or unknown \"outcome\""))?;
        Ok(Response {
            id,
            seq: value.get("seq").and_then(Value::as_u64),
            outcome,
            latency_ms: value.get("latency_ms").and_then(Value::as_f64),
            edge: value.get("edge").and_then(Value::as_bool).unwrap_or(false),
            reason: value
                .get("reason")
                .and_then(Value::as_str)
                .map(str::to_string),
        })
    }

    /// Decodes one line (v1 or v2), treating error envelopes as `Err`.
    /// Typed clients should prefer [`Reply::decode`], which keeps the
    /// error envelope structured.
    pub fn decode(line: &str) -> Result<Response, WireError> {
        match Reply::decode(line)? {
            Reply::Outcome(response) => Ok(response),
            Reply::Error(e) => Err(WireError {
                code: e.code.unwrap_or(ErrorCode::Malformed),
                message: format!("server error: {}", e.message),
            }),
        }
    }

    /// The v2 error envelope sent for requests that cannot be served.
    pub fn error_line(code: ErrorCode, seq: Option<u64>, message: &str) -> String {
        let mut map = BTreeMap::new();
        map.insert("v".into(), Value::Number(PROTOCOL_VERSION as f64));
        map.insert("error".into(), Value::String(message.to_string()));
        map.insert("error_code".into(), Value::String(code.label().into()));
        if let Some(seq) = seq {
            map.insert("seq".into(), Value::Number(seq as f64));
        }
        Value::Object(map).to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips() {
        let requests = [
            Request {
                app: "tm".into(),
                slo_ms: Some(400),
                payload_len: 64,
                seq: Some(9),
                at_us: Some(1_500_000),
            },
            Request {
                app: "lv".into(),
                slo_ms: None,
                payload_len: 0,
                seq: None,
                at_us: None,
            },
        ];
        for original in requests {
            let line = original.encode();
            assert!(!line.contains('\n'));
            assert!(line.contains("\"v\":2"), "{line}");
            let decoded = Request::decode(&line).expect("round trip");
            assert_eq!(decoded, original);
        }
    }

    #[test]
    fn v1_request_lines_are_rejected_as_malformed() {
        // The deprecation window is over: a bare v1 line (no "v") is a
        // wire-format violation, but its seq is still recoverable for
        // the error envelope's echo.
        let line = r#"{"app":"tm","payload_len":2,"payload":"ab","seq":3,"slo_ms":250}"#;
        let e = Request::decode(line).unwrap_err();
        assert_eq!(e.code, ErrorCode::Malformed);
        assert!(e.message.contains("v1"), "{e}");
        assert_eq!(seq_hint(line), Some(3));
        // Explicit v1 and future versions are rejected the same way.
        for bad in [
            r#"{"v":1,"app":"tm","payload_len":0}"#,
            r#"{"v":3,"app":"tm","payload_len":0}"#,
        ] {
            assert_eq!(Request::decode(bad).unwrap_err().code, ErrorCode::Malformed);
        }
    }

    #[test]
    fn response_round_trips() {
        let responses = [
            Response::ok(7, Some(5), 123.4),
            Response::violated(9, None, 512.0),
            Response::dropped((1 << 52) + 7, Some(6), true, "predicted"),
            Response::dropped(3, Some(2), false, "expired"),
        ];
        for original in responses {
            let line = original.encode();
            assert!(!line.contains('\n'));
            let decoded = Response::decode(&line).expect("round trip");
            assert_eq!(decoded, original);
        }
    }

    #[test]
    fn request_decode_rejects_malformed_lines() {
        for bad in [
            "",
            "not json",
            "{}",
            r#"{"v":2,"app":"tm"}"#,
            r#"{"v":2,"app":4,"payload_len":8}"#,
            r#"{"v":2,"app":"tm","payload_len":-3}"#,
            r#"{"v":2,"app":"tm","payload_len":8,"payload":42}"#,
            r#"{"v":2,"app":"tm","payload_len":8,"seq":1.5}"#,
            r#"{"v":2,"app":"tm","payload_len":8,"at_us":-4}"#,
            r#"{"v":"two","app":"tm","payload_len":8}"#,
            // Mistyped slo_ms is a format bug, not a range rejection.
            r#"{"v":2,"app":"tm","payload_len":8,"slo_ms":"fast"}"#,
        ] {
            let e = Request::decode(bad).expect_err(&format!("accepted {bad:?}"));
            assert_eq!(e.code, ErrorCode::Malformed, "{bad:?} → {e:?}");
        }
    }

    #[test]
    fn slo_errors_carry_their_own_code() {
        for bad in [
            r#"{"v":2,"app":"tm","payload_len":8,"slo_ms":0}"#,
            // Above MAX_SLO_MS: would overflow the deadline arithmetic.
            r#"{"v":2,"app":"tm","payload_len":8,"slo_ms":1152921504606846976}"#,
        ] {
            let e = Request::decode(bad).unwrap_err();
            assert_eq!(e.code, ErrorCode::SloOutOfRange, "{bad:?}");
        }
    }

    #[test]
    fn payload_length_is_validated_when_present() {
        let good = r#"{"v":2,"app":"tm","payload_len":2,"payload":"ab"}"#;
        assert!(Request::decode(good).is_ok());
        let bad = r#"{"v":2,"app":"tm","payload_len":3,"payload":"ab"}"#;
        let e = Request::decode(bad).unwrap_err();
        assert_eq!(e.code, ErrorCode::PayloadMismatch);
        assert!(e.message.contains("does not match"), "{e}");
    }

    #[test]
    fn encoded_payload_matches_declared_length() {
        let req = Request {
            app: "gm".into(),
            slo_ms: None,
            payload_len: 100,
            seq: None,
            at_us: None,
        };
        let decoded = Request::decode(&req.encode()).unwrap();
        assert_eq!(decoded.payload_len, 100);
    }

    #[test]
    fn error_envelopes_round_trip_with_code_and_seq() {
        for code in ErrorCode::ALL {
            let line = Response::error_line(code, Some(11), "bad thing");
            match Reply::decode(&line).expect("error envelope decodes") {
                Reply::Error(e) => {
                    assert_eq!(e.code, Some(code));
                    assert_eq!(e.seq, Some(11));
                    assert_eq!(e.message, "bad thing");
                }
                other => panic!("expected error, got {other:?}"),
            }
            // Compatibility surface: Response::decode reports it as Err.
            let e = Response::decode(&line).unwrap_err();
            assert_eq!(e.code, code);
            assert!(e.message.contains("bad thing"));
        }
    }

    #[test]
    fn v1_error_and_response_lines_are_rejected() {
        // Bare v1 error envelopes no longer decode.
        let e = Reply::decode(r#"{"error":"bad thing"}"#).unwrap_err();
        assert_eq!(e.code, ErrorCode::Malformed);
        // Nor do v1 outcome lines, even well-formed ones.
        let e = Reply::decode(r#"{"id":7,"outcome":"ok","latency_ms":1.5}"#).unwrap_err();
        assert_eq!(e.code, ErrorCode::Malformed);
    }

    #[test]
    fn response_decode_rejects_unknown_outcome() {
        assert!(Response::decode(r#"{"v":2,"id":1,"outcome":"maybe"}"#).is_err());
        assert!(Response::decode(r#"{"v":2,"outcome":"ok"}"#).is_err());
    }

    #[test]
    fn advance_control_lines_round_trip() {
        let line = ClientLine::encode_advance(5_250_000);
        assert_eq!(
            ClientLine::decode(&line).expect("control line decodes"),
            ClientLine::Advance { to_us: 5_250_000 }
        );
        // A plain request decodes through the same entry point.
        let req = Request {
            app: "tm".into(),
            slo_ms: None,
            payload_len: 2,
            seq: Some(4),
            at_us: Some(9),
        };
        match ClientLine::decode(&req.encode()).expect("request decodes") {
            ClientLine::Request(decoded) => assert_eq!(decoded, req),
            other => panic!("expected request, got {other:?}"),
        }
        // Control lines need the v2 envelope and a well-typed field,
        // and may not smuggle request fields (the request half would
        // be silently swallowed).
        for bad in [
            r#"{"advance_us":5}"#,
            r#"{"v":2,"advance_us":"soon"}"#,
            r#"{"v":2,"advance_us":-1}"#,
            r#"{"v":2,"app":"tm","payload_len":0,"seq":7,"advance_us":5}"#,
            r#"{"v":2,"seq":7,"advance_us":5}"#,
            r#"{"v":2,"advance_us":5,"at_us":9}"#,
            r#"{"v":2,"advance_us":5,"slo_ms":100}"#,
        ] {
            let e = ClientLine::decode(bad).expect_err(&format!("accepted {bad:?}"));
            assert_eq!(e.code, ErrorCode::Malformed, "{bad:?}");
        }
    }

    #[test]
    fn virtual_timestamps_beyond_the_cap_are_rejected() {
        // An unbounded clock target would walk the stepped engine's
        // per-second bookkeeping events under the engine lock; the cap
        // bounds what one client line can cost.
        let over = MAX_VIRTUAL_US + 1;
        let advance = format!(r#"{{"v":2,"advance_us":{over}}}"#);
        let e = ClientLine::decode(&advance).unwrap_err();
        assert_eq!(e.code, ErrorCode::Malformed);
        assert!(e.message.contains("at most"), "{e}");
        let request = format!(r#"{{"v":2,"app":"tm","payload_len":0,"at_us":{over}}}"#);
        let e = Request::decode(&request).unwrap_err();
        assert_eq!(e.code, ErrorCode::Malformed);
        // The cap itself is accepted.
        let at_cap = format!(r#"{{"v":2,"advance_us":{MAX_VIRTUAL_US}}}"#);
        assert!(ClientLine::decode(&at_cap).is_ok());
    }

    #[test]
    fn seq_hint_recovers_seq_from_invalid_requests() {
        assert_eq!(seq_hint(r#"{"payload_len":"x","seq":7}"#), Some(7));
        assert_eq!(seq_hint("not json"), None);
        assert_eq!(seq_hint(r#"{"seq":-1}"#), None);
    }
}
