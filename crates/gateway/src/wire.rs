//! The newline-delimited JSON wire protocol, version 2.
//!
//! One request per line, one response per line, UTF-8, no framing
//! beyond `\n`. Every line carries a `"v":2` envelope field. Requests:
//!
//! ```text
//! {"v":2,"app":"tm","slo_ms":400,"payload_len":128,"seq":5,"payload":"xx…"}
//! ```
//!
//! `app` and `payload_len` are required. `app` *routes*: a gateway
//! serves a registry of engines keyed by app name, and the field
//! selects which one admits the request (a name outside the registry
//! is answered with `unknown_app`). `slo_ms` defaults to the served
//! pipeline's SLO. `seq` is an optional client correlation number
//! echoed back verbatim — responses to pipelined requests may arrive
//! out of order. `payload` is optional; when present its length must
//! match `payload_len` (the gateway parses but does not interpret
//! it). `at_us` is an optional scheduled virtual arrival time
//! (microseconds since engine start) for deterministic trace replay:
//! engines with a stepped clock advance to it before admitting the
//! request, engines without one serve the request on receipt. Replay
//! clients must send `at_us` in non-decreasing order per connection,
//! and finish with an [`ClientLine::Advance`] control line
//! (`{"v":2,"advance_us":N}`) so the tail of the schedule resolves. A
//! replay split across `K` connections has each send
//! `{"v":2,"replay_join":K}` first ([`ClientLine::Join`]), which
//! gates admission on the minimum arrival watermark across all `K`
//! parties so the interleaved schedule replays at exact virtual times.
//! Responses:
//!
//! ```text
//! {"v":2,"id":7,"seq":5,"outcome":"ok","latency_ms":123.4}
//! {"v":2,"id":4503599627370496,"seq":6,"outcome":"dropped","edge":true,"reason":"predicted"}
//! {"v":2,"id":9,"seq":7,"outcome":"violated","latency_ms":512.0}
//! ```
//!
//! `outcome` is `ok` (completed within SLO), `dropped` (removed before
//! completing — at the gateway edge when `edge` is true, inside the
//! pipeline otherwise), or `violated` (completed after its deadline).
//! Requests that cannot be served get a structured error envelope
//! instead of an outcome, with a machine-readable [`ErrorCode`] and the
//! request's `seq` echoed whenever it could be recovered:
//!
//! ```text
//! {"v":2,"error_code":"slo_out_of_range","error":"…","seq":8}
//! ```
//!
//! # Codec
//!
//! The gateway runs this codec once per request line in the reader
//! thread and once per response in the writer, so it is written for
//! the hot path: encoding appends directly into a caller-supplied
//! (reusable) `String` with no intermediate tree, and decoding is a
//! single-pass typed scanner that extracts the known fields without
//! building a `Value` map — the payload in particular is *validated
//! and measured in place*, never unescaped into a fresh allocation.
//! The original tree-walking codec is kept, bit-for-bit, in
//! [`oracle`]; a property test drives both over the full
//! request/response surface and requires byte-identical encodes and
//! identical decodes, so the wire format provably did not move.
//!
//! # Version 1 removal
//!
//! v1 lines (no `"v"` field; bare `{"error":"…"}` envelopes without a
//! code) were accepted for one deprecation release and are now
//! rejected: decoding a v1 line yields a structured
//! [`ErrorCode::Malformed`] error, and the gateway answers it with a
//! v2 `malformed` envelope, echoing `seq` whenever [`seq_hint`] can
//! recover it.

use std::borrow::Cow;
use std::collections::HashSet;
use std::fmt;
use std::fmt::Write as _;

/// The protocol version this module encodes.
pub const PROTOCOL_VERSION: u64 = 2;

/// Largest accepted `slo_ms` (one day). The bound exists for arithmetic
/// safety, not policy: client-controlled values far above it would
/// overflow the microsecond deadline math (`ms · 1000` then
/// `now + slo`), panicking in debug builds and silently wrapping in
/// release.
pub const MAX_SLO_MS: u64 = 86_400_000;

/// Largest accepted `at_us` / `advance_us` (seven virtual days). These
/// fields steer a stepped engine's clock, which processes its
/// self-perpetuating per-second bookkeeping events (sync, scaling) all
/// the way to the target while holding the engine lock — so an
/// unbounded client-controlled timestamp would stall the whole gateway
/// on one line. Seven days bounds that walk at a few million events
/// while dwarfing any real replay.
pub const MAX_VIRTUAL_US: u64 = 7 * 86_400_000_000;

/// Largest accepted `replay_join` party count. Each declared party
/// costs the gateway a watermark slot for the lifetime of the replay,
/// so the count is client-controlled memory; 64k parties dwarfs any
/// real parallel replay while bounding that allocation.
pub const MAX_REPLAY_PARTIES: u64 = 65_536;

/// Machine-readable reason a request was answered with an error
/// envelope instead of an outcome.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ErrorCode {
    /// The line is not a well-formed request (bad JSON, missing or
    /// mistyped fields, unsupported protocol version).
    Malformed,
    /// The `app` field does not name the served pipeline.
    UnknownApp,
    /// The `payload` length does not match the declared `payload_len`.
    PayloadMismatch,
    /// `slo_ms` is outside `[1, MAX_SLO_MS]`.
    SloOutOfRange,
    /// The gateway's pending-request table is full.
    Overloaded,
    /// The tenant's token-bucket rate limit turned the request away
    /// before the admission decision ran.
    RateLimited,
    /// The gateway is shutting down and no longer admits requests.
    ShuttingDown,
}

impl ErrorCode {
    /// Every code, for exhaustive round-trip tests.
    pub const ALL: [ErrorCode; 7] = [
        ErrorCode::Malformed,
        ErrorCode::UnknownApp,
        ErrorCode::PayloadMismatch,
        ErrorCode::SloOutOfRange,
        ErrorCode::Overloaded,
        ErrorCode::RateLimited,
        ErrorCode::ShuttingDown,
    ];

    /// Wire spelling.
    pub fn label(self) -> &'static str {
        match self {
            ErrorCode::Malformed => "malformed",
            ErrorCode::UnknownApp => "unknown_app",
            ErrorCode::PayloadMismatch => "payload_mismatch",
            ErrorCode::SloOutOfRange => "slo_out_of_range",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::RateLimited => "rate_limited",
            ErrorCode::ShuttingDown => "shutting_down",
        }
    }

    /// Inverse of [`ErrorCode::label`].
    pub fn from_label(label: &str) -> Option<ErrorCode> {
        ErrorCode::ALL.into_iter().find(|c| c.label() == label)
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A wire-format violation, carrying the [`ErrorCode`] the server
/// reports for it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireError {
    /// Structured reason.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for WireError {}

fn err(code: ErrorCode, message: impl Into<String>) -> WireError {
    WireError {
        code,
        message: message.into(),
    }
}

/// Best-effort `seq` recovery from a line that failed full decoding —
/// so error envelopes can still be correlated by pipelining clients.
pub fn seq_hint(line: &str) -> Option<u64> {
    num_as_u64(scan(line).ok()?.seq.num()?)
}

/// A parsed client request.
#[derive(Clone, Debug, PartialEq)]
pub struct Request {
    /// Target application name (must match the served pipeline).
    pub app: String,
    /// Per-request SLO override, milliseconds.
    pub slo_ms: Option<u64>,
    /// Declared payload size, bytes.
    pub payload_len: usize,
    /// Client correlation number, echoed in the response.
    pub seq: Option<u64>,
    /// Scheduled virtual arrival time (µs since engine start) for
    /// deterministic trace replay; stepped engines advance their clock
    /// to it before admission, live engines ignore it.
    pub at_us: Option<u64>,
}

/// One decoded client line: a serving request, or a replay-control
/// line.
#[derive(Clone, Debug, PartialEq)]
pub enum ClientLine {
    /// A serving request.
    Request(Request),
    /// `{"v":2,"advance_us":N}` — steer a stepped engine's virtual
    /// clock to `N` µs since engine start. A replay client sends this
    /// once after its last request so the tail of the schedule
    /// resolves (the clock gate otherwise stops at the last scheduled
    /// arrival); engines without a steerable clock ignore it. The line
    /// gets no response of its own — outcomes of in-flight requests
    /// keep arriving as usual.
    Advance {
        /// Absolute virtual time to advance to, µs since engine start.
        to_us: u64,
    },
    /// `{"v":2,"replay_join":K}` — declare this connection one of `K`
    /// parallel replay parties for its app. Scheduled (`at_us`)
    /// requests from joined connections are admitted in global
    /// schedule order once every party has joined: each party's last
    /// seen `at_us` is its watermark (a promise it will send nothing
    /// earlier), and a scheduled arrival runs only when it is below
    /// the minimum watermark across all parties. The line gets no
    /// response of its own.
    Join {
        /// Total number of connections participating in the replay.
        parties: u64,
    },
}

impl ClientLine {
    /// Decodes one client line.
    pub fn decode(line: &str) -> Result<ClientLine, WireError> {
        let raw = scan(line)?;
        raw.check_version()?;
        if !matches!(raw.replay_join, Field::Absent) {
            // Control lines get no response, so a hybrid line would
            // have its other half silently swallowed — reject it.
            let other_fields = [
                &raw.app,
                &raw.seq,
                &raw.payload_len,
                &raw.payload,
                &raw.slo_ms,
                &raw.at_us,
                &raw.advance_us,
            ];
            if other_fields.iter().any(|f| !matches!(f, Field::Absent)) {
                return Err(err(
                    ErrorCode::Malformed,
                    "a line cannot carry both \"replay_join\" and other protocol fields",
                ));
            }
            let parties = bounded_replay_parties(raw.replay_join.num())?;
            return Ok(ClientLine::Join { parties });
        }
        if !matches!(raw.advance_us, Field::Absent) {
            // A hybrid line would have its request half silently
            // swallowed (control lines get no response), leaving the
            // client's seq unanswered forever — reject it outright.
            let request_fields = [
                &raw.app,
                &raw.seq,
                &raw.payload_len,
                &raw.payload,
                &raw.slo_ms,
                &raw.at_us,
            ];
            if request_fields.iter().any(|f| !matches!(f, Field::Absent)) {
                return Err(err(
                    ErrorCode::Malformed,
                    "a line cannot carry both \"advance_us\" and request fields",
                ));
            }
            let to_us = bounded_virtual_us(&raw.advance_us, "advance_us")?;
            return Ok(ClientLine::Advance { to_us });
        }
        Request::from_raw(&raw).map(ClientLine::Request)
    }

    /// Encodes a replay-control advance line (no trailing newline).
    pub fn encode_advance(to_us: u64) -> String {
        let mut out = String::with_capacity(32);
        out.push_str("{\"advance_us\":");
        push_number(&mut out, to_us as f64);
        out.push_str(",\"v\":2}");
        out
    }

    /// Encodes a replay-join control line (no trailing newline).
    pub fn encode_replay_join(parties: u64) -> String {
        let mut out = String::with_capacity(32);
        out.push_str("{\"replay_join\":");
        push_number(&mut out, parties as f64);
        out.push_str(",\"v\":2}");
        out
    }
}

/// Terminal classification carried on the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireOutcome {
    /// Completed within its SLO.
    Ok,
    /// Removed before completing.
    Dropped,
    /// Completed after its deadline.
    Violated,
}

impl WireOutcome {
    /// Wire spelling.
    pub fn label(self) -> &'static str {
        match self {
            WireOutcome::Ok => "ok",
            WireOutcome::Dropped => "dropped",
            WireOutcome::Violated => "violated",
        }
    }

    fn from_label(label: &str) -> Option<WireOutcome> {
        match label {
            "ok" => Some(WireOutcome::Ok),
            "dropped" => Some(WireOutcome::Dropped),
            "violated" => Some(WireOutcome::Violated),
            _ => None,
        }
    }
}

/// A server response carrying an outcome.
#[derive(Clone, Debug, PartialEq)]
pub struct Response {
    /// Server-assigned request id.
    pub id: u64,
    /// Echo of the request's `seq`, if any.
    pub seq: Option<u64>,
    /// Terminal classification.
    pub outcome: WireOutcome,
    /// End-to-end latency for completed requests, milliseconds.
    pub latency_ms: Option<f64>,
    /// For drops: whether the gateway rejected the request at the edge
    /// (true) or the pipeline dropped it after admission (false).
    pub edge: bool,
    /// For drops: the short [`pard_metrics::DropReason`] label.
    pub reason: Option<String>,
}

/// An error envelope the server sent instead of an outcome.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServerError {
    /// Structured reason; `None` when the envelope carries a code this
    /// client does not know (a newer server).
    pub code: Option<ErrorCode>,
    /// Human-readable detail.
    pub message: String,
    /// Echo of the request's `seq`, when the server could recover it.
    pub seq: Option<u64>,
}

/// Anything the server may send on a line: an outcome or an error
/// envelope. The typed client decodes through this.
#[derive(Clone, Debug, PartialEq)]
pub enum Reply {
    /// A terminal outcome for one request.
    Outcome(Response),
    /// A structured (v2) error envelope.
    Error(ServerError),
}

impl Reply {
    /// Decodes one server line. `Err` means the line itself is not a
    /// valid reply of either protocol version.
    pub fn decode(line: &str) -> Result<Reply, WireError> {
        let raw = scan(line)?;
        raw.check_version()?;
        if let Field::Str(message) = &raw.error {
            let code = match &raw.error_code {
                Field::Str(s) => ErrorCode::from_label(&s.resolve()),
                _ => None,
            };
            return Ok(Reply::Error(ServerError {
                code,
                message: message.resolve().into_owned(),
                seq: raw.seq.num().and_then(num_as_u64),
            }));
        }
        Ok(Reply::Outcome(Response::from_raw(&raw)?))
    }

    /// The correlation number, if the reply carries one.
    pub fn seq(&self) -> Option<u64> {
        match self {
            Reply::Outcome(response) => response.seq,
            Reply::Error(error) => error.seq,
        }
    }
}

impl Request {
    /// Appends one v2 JSON line (no trailing newline) to `out`,
    /// including a synthetic payload of `payload_len` bytes. Fields are
    /// emitted in sorted key order, matching [`oracle`] byte for byte.
    pub fn encode_into(&self, out: &mut String) {
        out.reserve(self.payload_len + 96);
        out.push_str("{\"app\":");
        push_string(out, &self.app);
        if let Some(at_us) = self.at_us {
            out.push_str(",\"at_us\":");
            push_number(out, at_us as f64);
        }
        out.push_str(",\"payload\":\"");
        out.extend(std::iter::repeat_n('x', self.payload_len));
        out.push_str("\",\"payload_len\":");
        push_number(out, self.payload_len as f64);
        if let Some(seq) = self.seq {
            out.push_str(",\"seq\":");
            push_number(out, seq as f64);
        }
        if let Some(slo) = self.slo_ms {
            out.push_str(",\"slo_ms\":");
            push_number(out, slo as f64);
        }
        out.push_str(",\"v\":2}");
    }

    /// Encodes to one v2 JSON line (no trailing newline), including a
    /// synthetic payload of `payload_len` bytes.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.encode_into(&mut out);
        out
    }

    /// Decodes one line.
    pub fn decode(line: &str) -> Result<Request, WireError> {
        let raw = scan(line)?;
        raw.check_version()?;
        Request::from_raw(&raw)
    }

    fn from_raw(raw: &RawLine<'_>) -> Result<Request, WireError> {
        let app = match &raw.app {
            Field::Str(s) => s.resolve().into_owned(),
            _ => return Err(err(ErrorCode::Malformed, "missing string field \"app\"")),
        };
        let payload_len = raw.payload_len.num().and_then(num_as_u64).ok_or_else(|| {
            err(
                ErrorCode::Malformed,
                "missing integer field \"payload_len\"",
            )
        })? as usize;
        let slo_ms = match &raw.slo_ms {
            Field::Absent => None,
            v => {
                // A mistyped field is a wire-format bug (Malformed); an
                // integer outside the window is a policy/range rejection
                // (SloOutOfRange). Clients branch on the distinction.
                let ms = v
                    .num()
                    .and_then(num_as_u64)
                    .ok_or_else(|| err(ErrorCode::Malformed, "\"slo_ms\" must be an integer"))?;
                if !(1..=MAX_SLO_MS).contains(&ms) {
                    return Err(err(
                        ErrorCode::SloOutOfRange,
                        format!("\"slo_ms\" must be in [1, {MAX_SLO_MS}]"),
                    ));
                }
                Some(ms)
            }
        };
        let seq = match &raw.seq {
            Field::Absent => None,
            v => Some(v.num().and_then(num_as_u64).ok_or_else(|| {
                err(
                    ErrorCode::Malformed,
                    "\"seq\" must be a non-negative integer",
                )
            })?),
        };
        let at_us = match &raw.at_us {
            Field::Absent => None,
            v => Some(bounded_virtual_us(v, "at_us")?),
        };
        match &raw.payload {
            Field::Absent => {}
            Field::Str(s) => {
                // The scanner measured the unescaped byte length in
                // place; nothing was copied.
                if s.unescaped_len != payload_len {
                    return Err(err(
                        ErrorCode::PayloadMismatch,
                        format!(
                            "payload length {} does not match declared payload_len {payload_len}",
                            s.unescaped_len
                        ),
                    ));
                }
            }
            _ => return Err(err(ErrorCode::Malformed, "\"payload\" must be a string")),
        }
        Ok(Request {
            app,
            slo_ms,
            payload_len,
            seq,
            at_us,
        })
    }
}

impl Response {
    /// A within-SLO completion.
    pub fn ok(id: u64, seq: Option<u64>, latency_ms: f64) -> Response {
        Response {
            id,
            seq,
            outcome: WireOutcome::Ok,
            latency_ms: Some(latency_ms),
            edge: false,
            reason: None,
        }
    }

    /// A completion that missed its deadline.
    pub fn violated(id: u64, seq: Option<u64>, latency_ms: f64) -> Response {
        Response {
            id,
            seq,
            outcome: WireOutcome::Violated,
            latency_ms: Some(latency_ms),
            edge: false,
            reason: None,
        }
    }

    /// A drop, at the edge or inside the pipeline.
    pub fn dropped(id: u64, seq: Option<u64>, edge: bool, reason: &str) -> Response {
        Response {
            id,
            seq,
            outcome: WireOutcome::Dropped,
            latency_ms: None,
            edge,
            reason: Some(reason.to_string()),
        }
    }

    /// Appends one v2 JSON line (no trailing newline) to `out`. Fields
    /// are emitted in sorted key order, matching [`oracle`] byte for
    /// byte.
    pub fn encode_into(&self, out: &mut String) {
        if self.edge {
            out.push_str("{\"edge\":true,\"id\":");
        } else {
            out.push_str("{\"id\":");
        }
        push_number(out, self.id as f64);
        if let Some(latency) = self.latency_ms {
            out.push_str(",\"latency_ms\":");
            push_number(out, latency);
        }
        out.push_str(",\"outcome\":\"");
        out.push_str(self.outcome.label());
        out.push('"');
        if let Some(reason) = &self.reason {
            out.push_str(",\"reason\":");
            push_string(out, reason);
        }
        if let Some(seq) = self.seq {
            out.push_str(",\"seq\":");
            push_number(out, seq as f64);
        }
        out.push_str(",\"v\":2}");
    }

    /// Encodes to one v2 JSON line (no trailing newline).
    pub fn encode(&self) -> String {
        let mut out = String::with_capacity(96);
        self.encode_into(&mut out);
        out
    }

    fn from_raw(raw: &RawLine<'_>) -> Result<Response, WireError> {
        let id = raw
            .id
            .num()
            .and_then(num_as_u64)
            .ok_or_else(|| err(ErrorCode::Malformed, "missing integer field \"id\""))?;
        let outcome = match &raw.outcome {
            Field::Str(s) => WireOutcome::from_label(&s.resolve()),
            _ => None,
        }
        .ok_or_else(|| err(ErrorCode::Malformed, "missing or unknown \"outcome\""))?;
        Ok(Response {
            id,
            seq: raw.seq.num().and_then(num_as_u64),
            outcome,
            latency_ms: raw.latency_ms.num(),
            edge: match raw.edge {
                Field::Bool(b) => b,
                _ => false,
            },
            reason: match &raw.reason {
                Field::Str(s) => Some(s.resolve().into_owned()),
                _ => None,
            },
        })
    }

    /// Decodes one line, treating error envelopes as `Err`. Typed
    /// clients should prefer [`Reply::decode`], which keeps the error
    /// envelope structured.
    pub fn decode(line: &str) -> Result<Response, WireError> {
        match Reply::decode(line)? {
            Reply::Outcome(response) => Ok(response),
            Reply::Error(e) => Err(WireError {
                code: e.code.unwrap_or(ErrorCode::Malformed),
                message: format!("server error: {}", e.message),
            }),
        }
    }

    /// Appends the v2 error envelope for an unservable request to
    /// `out` (no trailing newline).
    pub fn error_line_into(code: ErrorCode, seq: Option<u64>, message: &str, out: &mut String) {
        out.push_str("{\"error\":");
        push_string(out, message);
        out.push_str(",\"error_code\":\"");
        out.push_str(code.label());
        out.push('"');
        if let Some(seq) = seq {
            out.push_str(",\"seq\":");
            push_number(out, seq as f64);
        }
        out.push_str(",\"v\":2}");
    }

    /// The v2 error envelope sent for requests that cannot be served.
    pub fn error_line(code: ErrorCode, seq: Option<u64>, message: &str) -> String {
        let mut out = String::with_capacity(message.len() + 64);
        Response::error_line_into(code, seq, message, &mut out);
        out
    }
}

// === Typed encoder primitives ===================================== //

/// Appends a JSON number formatted exactly as the tree codec's
/// `Value::Number` serialiser does: integral values below `1e15` in
/// integer form, everything else through `f64`'s `Display`.
fn push_number(out: &mut String, n: f64) {
    if n.fract() == 0.0 && n.abs() < 1e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

/// Appends a JSON string literal with the tree codec's exact escaping.
fn push_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// === Typed single-pass decoder ===================================== //

/// `Value::as_u64` semantics on a raw number.
fn num_as_u64(n: f64) -> Option<u64> {
    if n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64 {
        Some(n as u64)
    } else {
        None
    }
}

/// Decodes a virtual-time field (`at_us` / `advance_us`): non-negative
/// integer, at most [`MAX_VIRTUAL_US`].
fn bounded_virtual_us(v: &Field<'_>, field: &str) -> Result<u64, WireError> {
    let us = v.num().and_then(num_as_u64).ok_or_else(|| {
        err(
            ErrorCode::Malformed,
            format!("{field:?} must be a non-negative integer"),
        )
    })?;
    if us > MAX_VIRTUAL_US {
        return Err(err(
            ErrorCode::Malformed,
            format!("{field:?} must be at most {MAX_VIRTUAL_US}"),
        ));
    }
    Ok(us)
}

/// Decodes a `replay_join` party count: integer in
/// `[1, MAX_REPLAY_PARTIES]`. Shared by the scanner and the oracle so
/// the diagnostics stay byte-identical.
fn bounded_replay_parties(n: Option<f64>) -> Result<u64, WireError> {
    let parties = n.and_then(num_as_u64).ok_or_else(|| {
        err(
            ErrorCode::Malformed,
            "\"replay_join\" must be a non-negative integer",
        )
    })?;
    if !(1..=MAX_REPLAY_PARTIES).contains(&parties) {
        return Err(err(
            ErrorCode::Malformed,
            format!("\"replay_join\" must be in [1, {MAX_REPLAY_PARTIES}]"),
        ));
    }
    Ok(parties)
}

/// A string value as scanned in place: the escaped span between the
/// quotes plus its decoded byte length. Resolving to text is deferred —
/// and skipped entirely for the payload, where only the length is ever
/// needed.
#[derive(Clone, Copy, Debug)]
struct RawStr<'a> {
    /// The span between the quotes, escapes intact.
    raw: &'a str,
    /// Byte length of the decoded string.
    unescaped_len: usize,
    /// Whether the span contains any `\` escape.
    has_escapes: bool,
}

impl<'a> RawStr<'a> {
    /// The decoded text — borrowed when no escapes are present.
    fn resolve(&self) -> Cow<'a, str> {
        if !self.has_escapes {
            return Cow::Borrowed(self.raw);
        }
        // Escapes were validated by the scanner; decode mirrors the
        // tree codec exactly.
        let mut out = String::with_capacity(self.unescaped_len);
        let bytes = self.raw.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            let b = bytes[i];
            if b != b'\\' {
                let len = utf8_len(b);
                out.push_str(&self.raw[i..i + len]);
                i += len;
                continue;
            }
            i += 1;
            match bytes[i] {
                b'"' => out.push('"'),
                b'\\' => out.push('\\'),
                b'/' => out.push('/'),
                b'b' => out.push('\u{08}'),
                b'f' => out.push('\u{0C}'),
                b'n' => out.push('\n'),
                b'r' => out.push('\r'),
                b't' => out.push('\t'),
                b'u' => {
                    let cp = hex4_unchecked(&bytes[i + 1..i + 5]);
                    i += 4;
                    if (0xD800..0xDC00).contains(&cp) {
                        // Validated surrogate pair: \uHHHH\uLLLL.
                        let lo = hex4_unchecked(&bytes[i + 3..i + 7]);
                        i += 6;
                        let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                        out.push(char::from_u32(c).expect("scanner validated surrogate pair"));
                    } else {
                        out.push(char::from_u32(cp).expect("scanner validated code point"));
                    }
                }
                other => unreachable!("scanner validated escapes, found \\{}", other as char),
            }
            i += 1;
        }
        Cow::Owned(out)
    }
}

fn hex4_unchecked(bytes: &[u8]) -> u32 {
    let mut v = 0u32;
    for &b in &bytes[..4] {
        let d = match b {
            b'0'..=b'9' => (b - b'0') as u32,
            b'a'..=b'f' => (b - b'a' + 10) as u32,
            _ => (b - b'A' + 10) as u32,
        };
        v = v * 16 + d;
    }
    v
}

fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        0xF0..=0xF7 => 4,
        _ => 1,
    }
}

/// One scanned scalar field.
#[derive(Clone, Copy, Debug, Default)]
enum Field<'a> {
    /// Key not present on the line.
    #[default]
    Absent,
    /// A JSON number.
    Num(f64),
    /// A JSON string.
    Str(RawStr<'a>),
    /// `true` / `false`.
    Bool(bool),
    /// Present with a value no typed accessor matches (`null`, arrays,
    /// objects) — mirrors `Value::as_*` returning `None` on those.
    Other,
}

impl<'a> Field<'a> {
    fn num(&self) -> Option<f64> {
        match self {
            Field::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Every known wire field of one scanned line (request and response
/// surfaces share the scanner).
#[derive(Default)]
struct RawLine<'a> {
    v: Field<'a>,
    app: Field<'a>,
    slo_ms: Field<'a>,
    payload_len: Field<'a>,
    seq: Field<'a>,
    at_us: Field<'a>,
    advance_us: Field<'a>,
    replay_join: Field<'a>,
    payload: Field<'a>,
    id: Field<'a>,
    outcome: Field<'a>,
    latency_ms: Field<'a>,
    edge: Field<'a>,
    reason: Field<'a>,
    error: Field<'a>,
    error_code: Field<'a>,
}

impl<'a> RawLine<'a> {
    fn slot(&mut self, key: &str) -> Option<&mut Field<'a>> {
        Some(match key {
            "v" => &mut self.v,
            "app" => &mut self.app,
            "slo_ms" => &mut self.slo_ms,
            "payload_len" => &mut self.payload_len,
            "seq" => &mut self.seq,
            "at_us" => &mut self.at_us,
            "advance_us" => &mut self.advance_us,
            "replay_join" => &mut self.replay_join,
            "payload" => &mut self.payload,
            "id" => &mut self.id,
            "outcome" => &mut self.outcome,
            "latency_ms" => &mut self.latency_ms,
            "edge" => &mut self.edge,
            "reason" => &mut self.reason,
            "error" => &mut self.error,
            "error_code" => &mut self.error_code,
            _ => return None,
        })
    }

    /// Checks the `"v"` envelope field: it must be present and equal 2.
    /// Absent (a v1 line) or any other value is a wire-format
    /// violation — v1 decoding was removed after its one-release
    /// deprecation window.
    fn check_version(&self) -> Result<(), WireError> {
        match &self.v {
            Field::Absent => Err(err(
                ErrorCode::Malformed,
                "missing protocol version field \"v\" (v1 lines are no longer decoded; speak v2)",
            )),
            v if v.num().and_then(num_as_u64) == Some(PROTOCOL_VERSION) => Ok(()),
            v => {
                let rendered = match v {
                    Field::Num(n) => {
                        let mut s = String::new();
                        push_number(&mut s, *n);
                        s
                    }
                    Field::Str(s) => format!("{:?}", s.resolve()),
                    Field::Bool(b) => b.to_string(),
                    _ => "null".into(),
                };
                Err(err(
                    ErrorCode::Malformed,
                    format!(
                        "unsupported protocol version {rendered} (this gateway speaks v2 only)"
                    ),
                ))
            }
        }
    }
}

/// Maximum nesting depth accepted (matching the tree parser); guards
/// against stack exhaustion on adversarial input.
const MAX_DEPTH: usize = 128;

struct Scanner<'a> {
    text: &'a str,
    bytes: &'a [u8],
    pos: usize,
    /// Unknown top-level keys seen, for duplicate detection (the only
    /// allocation on the scan path, and only for lines carrying fields
    /// outside the protocol surface). A set, not a Vec: membership
    /// stays O(1) even on a MAX_LINE_BYTES line packed with distinct
    /// keys, so adversarial input cannot buy quadratic reader-thread
    /// CPU (the tree parser this replaced was O(n log n) via BTreeMap).
    unknown_keys: HashSet<String>,
}

/// Scans one wire line into its known fields without building a value
/// tree. The grammar, the validation (duplicate keys, depth cap,
/// escape and surrogate rules, number syntax, trailing input), and the
/// resulting error *codes* are those of the tree parser; non-object
/// documents are delegated to it outright so even the cold-path
/// messages match.
fn scan(line: &str) -> Result<RawLine<'_>, WireError> {
    let mut s = Scanner {
        text: line,
        bytes: line.as_bytes(),
        pos: 0,
        unknown_keys: HashSet::new(),
    };
    s.skip_ws();
    if s.peek() != Some(b'{') {
        // Not an object: run the tree parser for its exact diagnosis —
        // invalid JSON is Malformed with the parse error, while a valid
        // non-object document fails the version check just like an
        // object without "v".
        return match pard_pipeline::json::parse(line) {
            Ok(_) => Err(err(
                ErrorCode::Malformed,
                "missing protocol version field \"v\" (v1 lines are no longer decoded; speak v2)",
            )),
            Err(e) => Err(err(ErrorCode::Malformed, format!("invalid JSON: {e}"))),
        };
    }
    s.pos += 1;
    let mut raw = RawLine::default();
    s.skip_ws();
    if s.peek() == Some(b'}') {
        s.pos += 1;
    } else {
        loop {
            s.skip_ws();
            let key = s.scan_string()?;
            s.skip_ws();
            s.expect(b':')?;
            s.skip_ws();
            let value = s.scan_field_value()?;
            let resolved_key = key.resolve();
            match raw.slot(&resolved_key) {
                Some(slot) => {
                    if !matches!(slot, Field::Absent) {
                        return Err(s.jerr(format!("duplicate key \"{resolved_key}\"")));
                    }
                    *slot = value;
                }
                None => {
                    let owned = resolved_key.into_owned();
                    if !s.unknown_keys.insert(owned.clone()) {
                        return Err(s.jerr(format!("duplicate key \"{owned}\"")));
                    }
                }
            }
            s.skip_ws();
            match s.bump() {
                Some(b',') => continue,
                Some(b'}') => break,
                _ => {
                    s.pos = s.pos.saturating_sub(1);
                    return Err(s.jerr("expected ',' or '}'"));
                }
            }
        }
    }
    s.skip_ws();
    if s.pos != s.bytes.len() {
        return Err(s.jerr("trailing characters after document"));
    }
    Ok(raw)
}

impl<'a> Scanner<'a> {
    fn jerr(&self, msg: impl fmt::Display) -> WireError {
        err(
            ErrorCode::Malformed,
            format!("invalid JSON: JSON error at byte {}: {msg}", self.pos),
        )
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), WireError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.jerr(format!("expected '{}'", b as char)))
        }
    }

    fn keyword(&mut self, kw: &str) -> Result<(), WireError> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(self.jerr(format!("expected '{kw}'")))
        }
    }

    /// One member value at nesting depth 1 (inside the top-level
    /// object).
    fn scan_field_value(&mut self) -> Result<Field<'a>, WireError> {
        match self.peek() {
            Some(b'"') => Ok(Field::Str(self.scan_string()?)),
            Some(b'-' | b'0'..=b'9') => Ok(Field::Num(self.scan_number()?)),
            Some(b't') => {
                self.keyword("true")?;
                Ok(Field::Bool(true))
            }
            Some(b'f') => {
                self.keyword("false")?;
                Ok(Field::Bool(false))
            }
            Some(b'n') => {
                self.keyword("null")?;
                Ok(Field::Other)
            }
            Some(b'{' | b'[') => {
                self.skip_value(1)?;
                Ok(Field::Other)
            }
            Some(c) => Err(self.jerr(format!("unexpected character '{}'", c as char))),
            None => Err(self.jerr("unexpected end of input")),
        }
    }

    /// Validates-and-discards one value at `depth` — unknown nested
    /// structure the protocol carries no meaning for, still held to
    /// the full grammar (duplicate keys included) so acceptance
    /// matches the tree parser.
    fn skip_value(&mut self, depth: usize) -> Result<(), WireError> {
        if depth >= MAX_DEPTH {
            return Err(self.jerr("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => {
                self.pos += 1;
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(());
                }
                let mut keys: HashSet<String> = HashSet::new();
                loop {
                    self.skip_ws();
                    let key = self.scan_string()?.resolve().into_owned();
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    self.skip_value(depth + 1)?;
                    if !keys.insert(key.clone()) {
                        return Err(self.jerr(format!("duplicate key \"{key}\"")));
                    }
                    self.skip_ws();
                    match self.bump() {
                        Some(b',') => continue,
                        Some(b'}') => return Ok(()),
                        _ => {
                            self.pos = self.pos.saturating_sub(1);
                            return Err(self.jerr("expected ',' or '}'"));
                        }
                    }
                }
            }
            Some(b'[') => {
                self.pos += 1;
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(());
                }
                loop {
                    self.skip_ws();
                    self.skip_value(depth + 1)?;
                    self.skip_ws();
                    match self.bump() {
                        Some(b',') => continue,
                        Some(b']') => return Ok(()),
                        _ => {
                            self.pos = self.pos.saturating_sub(1);
                            return Err(self.jerr("expected ',' or ']'"));
                        }
                    }
                }
            }
            Some(b'"') => {
                self.scan_string()?;
                Ok(())
            }
            Some(b'-' | b'0'..=b'9') => {
                self.scan_number()?;
                Ok(())
            }
            Some(b't') => self.keyword("true"),
            Some(b'f') => self.keyword("false"),
            Some(b'n') => self.keyword("null"),
            Some(c) => Err(self.jerr(format!("unexpected character '{}'", c as char))),
            None => Err(self.jerr("unexpected end of input")),
        }
    }

    /// Validates one string literal in place, measuring its decoded
    /// byte length without allocating. Plain runs (no quote, no
    /// escape, no control byte — the entire payload in practice) are
    /// skipped in one predicate scan rather than byte-by-byte
    /// dispatch; the line is already a valid `&str`, so multibyte
    /// sequences need no re-validation and contribute their raw byte
    /// length.
    fn scan_string(&mut self) -> Result<RawStr<'a>, WireError> {
        self.expect(b'"')?;
        let start = self.pos;
        let mut unescaped_len = 0usize;
        let mut has_escapes = false;
        loop {
            let rest = &self.bytes[self.pos..];
            let Some(run) = rest
                .iter()
                .position(|&b| b == b'"' || b == b'\\' || b < 0x20)
            else {
                self.pos = self.bytes.len();
                return Err(self.jerr("unterminated string"));
            };
            self.pos += run;
            unescaped_len += run;
            match self.bytes[self.pos] {
                b'"' => {
                    self.pos += 1;
                    return Ok(RawStr {
                        raw: &self.text[start..self.pos - 1],
                        unescaped_len,
                        has_escapes,
                    });
                }
                b'\\' => {
                    self.pos += 1;
                    has_escapes = true;
                    match self.bump() {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            unescaped_len += 1;
                        }
                        Some(b'u') => {
                            let cp = self.hex4()?;
                            if (0xD800..0xDC00).contains(&cp) {
                                // High surrogate: require a low one next.
                                if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                    return Err(self.jerr("unpaired surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.jerr("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                unescaped_len += char::from_u32(c)
                                    .ok_or_else(|| self.jerr("invalid surrogate pair"))?
                                    .len_utf8();
                            } else if (0xDC00..0xE000).contains(&cp) {
                                return Err(self.jerr("unpaired low surrogate"));
                            } else {
                                unescaped_len += char::from_u32(cp)
                                    .ok_or_else(|| self.jerr("invalid code point"))?
                                    .len_utf8();
                            }
                        }
                        _ => return Err(self.jerr("invalid escape sequence")),
                    }
                }
                _ => {
                    self.pos += 1;
                    return Err(self.jerr("control character in string"));
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, WireError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.bump() {
                Some(c @ b'0'..=b'9') => (c - b'0') as u32,
                Some(c @ b'a'..=b'f') => (c - b'a' + 10) as u32,
                Some(c @ b'A'..=b'F') => (c - b'A' + 10) as u32,
                _ => return Err(self.jerr("invalid \\u escape")),
            };
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn scan_number(&mut self) -> Result<f64, WireError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: a single 0, or a nonzero digit then digits.
        match self.peek() {
            Some(b'0') => {
                self.pos += 1;
            }
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.jerr("invalid number")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.jerr("digits required after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.jerr("digits required in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        self.text[start..self.pos]
            .parse::<f64>()
            .map_err(|_| self.jerr("number out of range"))
    }
}

pub mod oracle {
    //! The original tree-walking codec, kept verbatim as the
    //! differential-testing oracle for the typed hot-path codec.
    //!
    //! Every function here routes through
    //! [`pard_pipeline::json::Value`] exactly as the pre-optimisation
    //! gateway did. The property suite
    //! (`crates/gateway/tests/wire_oracle.rs`) requires the typed
    //! encoders to produce **byte-identical** lines and the typed
    //! decoders to produce **identical results** (values and error
    //! codes) across the full request/reply surface — so any
    //! divergence introduced by a future codec change is caught
    //! against this reference, not discovered on the wire.

    use std::collections::BTreeMap;

    use pard_pipeline::json::{parse, Value};

    use super::{
        bounded_replay_parties, err, ClientLine, ErrorCode, Reply, Request, Response, ServerError,
        WireError, WireOutcome, MAX_SLO_MS, MAX_VIRTUAL_US, PROTOCOL_VERSION,
    };

    fn check_version(value: &Value) -> Result<(), WireError> {
        match value.get("v") {
            None => Err(err(
                ErrorCode::Malformed,
                "missing protocol version field \"v\" (v1 lines are no longer decoded; speak v2)",
            )),
            Some(v) => match v.as_u64() {
                Some(PROTOCOL_VERSION) => Ok(()),
                _ => Err(err(
                    ErrorCode::Malformed,
                    format!(
                        "unsupported protocol version {} (this gateway speaks v2 only)",
                        v.to_json()
                    ),
                )),
            },
        }
    }

    fn bounded_virtual_us(v: &Value, field: &str) -> Result<u64, WireError> {
        let us = v.as_u64().ok_or_else(|| {
            err(
                ErrorCode::Malformed,
                format!("{field:?} must be a non-negative integer"),
            )
        })?;
        if us > MAX_VIRTUAL_US {
            return Err(err(
                ErrorCode::Malformed,
                format!("{field:?} must be at most {MAX_VIRTUAL_US}"),
            ));
        }
        Ok(us)
    }

    /// Reference [`Request`] encoder.
    pub fn encode_request(request: &Request) -> String {
        let mut map = BTreeMap::new();
        map.insert("v".into(), Value::Number(PROTOCOL_VERSION as f64));
        map.insert("app".into(), Value::String(request.app.clone()));
        if let Some(slo) = request.slo_ms {
            map.insert("slo_ms".into(), Value::Number(slo as f64));
        }
        map.insert(
            "payload_len".into(),
            Value::Number(request.payload_len as f64),
        );
        if let Some(seq) = request.seq {
            map.insert("seq".into(), Value::Number(seq as f64));
        }
        if let Some(at_us) = request.at_us {
            map.insert("at_us".into(), Value::Number(at_us as f64));
        }
        map.insert(
            "payload".into(),
            Value::String("x".repeat(request.payload_len)),
        );
        Value::Object(map).to_json()
    }

    /// Reference advance-control encoder.
    pub fn encode_advance(to_us: u64) -> String {
        let mut map = BTreeMap::new();
        map.insert("v".into(), Value::Number(PROTOCOL_VERSION as f64));
        map.insert("advance_us".into(), Value::Number(to_us as f64));
        Value::Object(map).to_json()
    }

    /// Reference replay-join control encoder.
    pub fn encode_replay_join(parties: u64) -> String {
        let mut map = BTreeMap::new();
        map.insert("v".into(), Value::Number(PROTOCOL_VERSION as f64));
        map.insert("replay_join".into(), Value::Number(parties as f64));
        Value::Object(map).to_json()
    }

    /// Reference [`Response`] encoder.
    pub fn encode_response(response: &Response) -> String {
        let mut map = BTreeMap::new();
        map.insert("v".into(), Value::Number(PROTOCOL_VERSION as f64));
        map.insert("id".into(), Value::Number(response.id as f64));
        if let Some(seq) = response.seq {
            map.insert("seq".into(), Value::Number(seq as f64));
        }
        map.insert(
            "outcome".into(),
            Value::String(response.outcome.label().into()),
        );
        if let Some(latency) = response.latency_ms {
            map.insert("latency_ms".into(), Value::Number(latency));
        }
        if response.edge {
            map.insert("edge".into(), Value::Bool(true));
        }
        if let Some(reason) = &response.reason {
            map.insert("reason".into(), Value::String(reason.clone()));
        }
        Value::Object(map).to_json()
    }

    /// Reference error-envelope encoder.
    pub fn encode_error_line(code: ErrorCode, seq: Option<u64>, message: &str) -> String {
        let mut map = BTreeMap::new();
        map.insert("v".into(), Value::Number(PROTOCOL_VERSION as f64));
        map.insert("error".into(), Value::String(message.to_string()));
        map.insert("error_code".into(), Value::String(code.label().into()));
        if let Some(seq) = seq {
            map.insert("seq".into(), Value::Number(seq as f64));
        }
        Value::Object(map).to_json()
    }

    /// Reference [`ClientLine`] decoder.
    pub fn decode_client_line(line: &str) -> Result<ClientLine, WireError> {
        let value =
            parse(line).map_err(|e| err(ErrorCode::Malformed, format!("invalid JSON: {e}")))?;
        check_version(&value)?;
        if let Some(v) = value.get("replay_join") {
            let other_fields = [
                "app",
                "seq",
                "payload_len",
                "payload",
                "slo_ms",
                "at_us",
                "advance_us",
            ];
            if other_fields.iter().any(|k| value.get(k).is_some()) {
                return Err(err(
                    ErrorCode::Malformed,
                    "a line cannot carry both \"replay_join\" and other protocol fields",
                ));
            }
            let parties = bounded_replay_parties(v.as_f64())?;
            return Ok(ClientLine::Join { parties });
        }
        if let Some(v) = value.get("advance_us") {
            let request_fields = ["app", "seq", "payload_len", "payload", "slo_ms", "at_us"];
            if request_fields.iter().any(|k| value.get(k).is_some()) {
                return Err(err(
                    ErrorCode::Malformed,
                    "a line cannot carry both \"advance_us\" and request fields",
                ));
            }
            let to_us = bounded_virtual_us(v, "advance_us")?;
            return Ok(ClientLine::Advance { to_us });
        }
        request_from_value(&value).map(ClientLine::Request)
    }

    /// Reference [`Request`] decoder.
    pub fn decode_request(line: &str) -> Result<Request, WireError> {
        let value =
            parse(line).map_err(|e| err(ErrorCode::Malformed, format!("invalid JSON: {e}")))?;
        check_version(&value)?;
        request_from_value(&value)
    }

    fn request_from_value(value: &Value) -> Result<Request, WireError> {
        let app = value
            .get("app")
            .and_then(Value::as_str)
            .ok_or_else(|| err(ErrorCode::Malformed, "missing string field \"app\""))?
            .to_string();
        let payload_len = value
            .get("payload_len")
            .and_then(Value::as_u64)
            .ok_or_else(|| {
                err(
                    ErrorCode::Malformed,
                    "missing integer field \"payload_len\"",
                )
            })? as usize;
        let slo_ms = match value.get("slo_ms") {
            None => None,
            Some(v) => {
                let ms = v
                    .as_u64()
                    .ok_or_else(|| err(ErrorCode::Malformed, "\"slo_ms\" must be an integer"))?;
                if !(1..=MAX_SLO_MS).contains(&ms) {
                    return Err(err(
                        ErrorCode::SloOutOfRange,
                        format!("\"slo_ms\" must be in [1, {MAX_SLO_MS}]"),
                    ));
                }
                Some(ms)
            }
        };
        let seq = match value.get("seq") {
            None => None,
            Some(v) => Some(v.as_u64().ok_or_else(|| {
                err(
                    ErrorCode::Malformed,
                    "\"seq\" must be a non-negative integer",
                )
            })?),
        };
        let at_us = match value.get("at_us") {
            None => None,
            Some(v) => Some(bounded_virtual_us(v, "at_us")?),
        };
        if let Some(payload) = value.get("payload") {
            let payload = payload
                .as_str()
                .ok_or_else(|| err(ErrorCode::Malformed, "\"payload\" must be a string"))?;
            if payload.len() != payload_len {
                return Err(err(
                    ErrorCode::PayloadMismatch,
                    format!(
                        "payload length {} does not match declared payload_len {payload_len}",
                        payload.len()
                    ),
                ));
            }
        }
        Ok(Request {
            app,
            slo_ms,
            payload_len,
            seq,
            at_us,
        })
    }

    /// Reference [`Reply`] decoder.
    pub fn decode_reply(line: &str) -> Result<Reply, WireError> {
        let value =
            parse(line).map_err(|e| err(ErrorCode::Malformed, format!("invalid JSON: {e}")))?;
        check_version(&value)?;
        if let Some(message) = value.get("error").and_then(Value::as_str) {
            let code = value
                .get("error_code")
                .and_then(Value::as_str)
                .and_then(ErrorCode::from_label);
            return Ok(Reply::Error(ServerError {
                code,
                message: message.to_string(),
                seq: value.get("seq").and_then(Value::as_u64),
            }));
        }
        let id = value
            .get("id")
            .and_then(Value::as_u64)
            .ok_or_else(|| err(ErrorCode::Malformed, "missing integer field \"id\""))?;
        let outcome = value
            .get("outcome")
            .and_then(Value::as_str)
            .and_then(WireOutcome::from_label)
            .ok_or_else(|| err(ErrorCode::Malformed, "missing or unknown \"outcome\""))?;
        Ok(Reply::Outcome(Response {
            id,
            seq: value.get("seq").and_then(Value::as_u64),
            outcome,
            latency_ms: value.get("latency_ms").and_then(Value::as_f64),
            edge: value.get("edge").and_then(Value::as_bool).unwrap_or(false),
            reason: value
                .get("reason")
                .and_then(Value::as_str)
                .map(str::to_string),
        }))
    }

    /// Reference `seq` recovery.
    pub fn seq_hint(line: &str) -> Option<u64> {
        parse(line).ok()?.get("seq")?.as_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips() {
        let requests = [
            Request {
                app: "tm".into(),
                slo_ms: Some(400),
                payload_len: 64,
                seq: Some(9),
                at_us: Some(1_500_000),
            },
            Request {
                app: "lv".into(),
                slo_ms: None,
                payload_len: 0,
                seq: None,
                at_us: None,
            },
        ];
        for original in requests {
            let line = original.encode();
            assert!(!line.contains('\n'));
            assert!(line.contains("\"v\":2"), "{line}");
            let decoded = Request::decode(&line).expect("round trip");
            assert_eq!(decoded, original);
        }
    }

    #[test]
    fn v1_request_lines_are_rejected_as_malformed() {
        // The deprecation window is over: a bare v1 line (no "v") is a
        // wire-format violation, but its seq is still recoverable for
        // the error envelope's echo.
        let line = r#"{"app":"tm","payload_len":2,"payload":"ab","seq":3,"slo_ms":250}"#;
        let e = Request::decode(line).unwrap_err();
        assert_eq!(e.code, ErrorCode::Malformed);
        assert!(e.message.contains("v1"), "{e}");
        assert_eq!(seq_hint(line), Some(3));
        // Explicit v1 and future versions are rejected the same way.
        for bad in [
            r#"{"v":1,"app":"tm","payload_len":0}"#,
            r#"{"v":3,"app":"tm","payload_len":0}"#,
        ] {
            assert_eq!(Request::decode(bad).unwrap_err().code, ErrorCode::Malformed);
        }
    }

    #[test]
    fn response_round_trips() {
        let responses = [
            Response::ok(7, Some(5), 123.4),
            Response::violated(9, None, 512.0),
            Response::dropped((1 << 52) + 7, Some(6), true, "predicted"),
            Response::dropped(3, Some(2), false, "expired"),
        ];
        for original in responses {
            let line = original.encode();
            assert!(!line.contains('\n'));
            let decoded = Response::decode(&line).expect("round trip");
            assert_eq!(decoded, original);
        }
    }

    #[test]
    fn request_decode_rejects_malformed_lines() {
        for bad in [
            "",
            "not json",
            "{}",
            r#"{"v":2,"app":"tm"}"#,
            r#"{"v":2,"app":4,"payload_len":8}"#,
            r#"{"v":2,"app":"tm","payload_len":-3}"#,
            r#"{"v":2,"app":"tm","payload_len":8,"payload":42}"#,
            r#"{"v":2,"app":"tm","payload_len":8,"seq":1.5}"#,
            r#"{"v":2,"app":"tm","payload_len":8,"at_us":-4}"#,
            r#"{"v":"two","app":"tm","payload_len":8}"#,
            // Mistyped slo_ms is a format bug, not a range rejection.
            r#"{"v":2,"app":"tm","payload_len":8,"slo_ms":"fast"}"#,
            // Structural violations the scanner must still catch.
            r#"{"v":2,"app":"tm","payload_len":8,"app":"tm"}"#,
            r#"{"v":2,"app":"tm","payload_len":8} extra"#,
            r#"{"v":2,"app":"tm","payload_len":08}"#,
        ] {
            let e = Request::decode(bad).expect_err(&format!("accepted {bad:?}"));
            assert_eq!(e.code, ErrorCode::Malformed, "{bad:?} → {e:?}");
        }
    }

    #[test]
    fn slo_errors_carry_their_own_code() {
        for bad in [
            r#"{"v":2,"app":"tm","payload_len":8,"slo_ms":0}"#,
            // Above MAX_SLO_MS: would overflow the deadline arithmetic.
            r#"{"v":2,"app":"tm","payload_len":8,"slo_ms":1152921504606846976}"#,
        ] {
            let e = Request::decode(bad).unwrap_err();
            assert_eq!(e.code, ErrorCode::SloOutOfRange, "{bad:?}");
        }
    }

    #[test]
    fn payload_length_is_validated_when_present() {
        let good = r#"{"v":2,"app":"tm","payload_len":2,"payload":"ab"}"#;
        assert!(Request::decode(good).is_ok());
        let bad = r#"{"v":2,"app":"tm","payload_len":3,"payload":"ab"}"#;
        let e = Request::decode(bad).unwrap_err();
        assert_eq!(e.code, ErrorCode::PayloadMismatch);
        assert!(e.message.contains("does not match"), "{e}");
        // Escaped payloads are measured by *decoded* byte length,
        // without being decoded into an allocation.
        let escaped = r#"{"v":2,"app":"tm","payload_len":5,"payload":"a\néb"}"#;
        assert_eq!(Request::decode(escaped).unwrap().payload_len, 5);
    }

    #[test]
    fn encoded_payload_matches_declared_length() {
        let req = Request {
            app: "gm".into(),
            slo_ms: None,
            payload_len: 100,
            seq: None,
            at_us: None,
        };
        let decoded = Request::decode(&req.encode()).unwrap();
        assert_eq!(decoded.payload_len, 100);
    }

    #[test]
    fn error_envelopes_round_trip_with_code_and_seq() {
        for code in ErrorCode::ALL {
            let line = Response::error_line(code, Some(11), "bad thing");
            match Reply::decode(&line).expect("error envelope decodes") {
                Reply::Error(e) => {
                    assert_eq!(e.code, Some(code));
                    assert_eq!(e.seq, Some(11));
                    assert_eq!(e.message, "bad thing");
                }
                other => panic!("expected error, got {other:?}"),
            }
            // Compatibility surface: Response::decode reports it as Err.
            let e = Response::decode(&line).unwrap_err();
            assert_eq!(e.code, code);
            assert!(e.message.contains("bad thing"));
        }
    }

    #[test]
    fn v1_error_and_response_lines_are_rejected() {
        // Bare v1 error envelopes no longer decode.
        let e = Reply::decode(r#"{"error":"bad thing"}"#).unwrap_err();
        assert_eq!(e.code, ErrorCode::Malformed);
        // Nor do v1 outcome lines, even well-formed ones.
        let e = Reply::decode(r#"{"id":7,"outcome":"ok","latency_ms":1.5}"#).unwrap_err();
        assert_eq!(e.code, ErrorCode::Malformed);
    }

    #[test]
    fn response_decode_rejects_unknown_outcome() {
        assert!(Response::decode(r#"{"v":2,"id":1,"outcome":"maybe"}"#).is_err());
        assert!(Response::decode(r#"{"v":2,"outcome":"ok"}"#).is_err());
    }

    #[test]
    fn advance_control_lines_round_trip() {
        let line = ClientLine::encode_advance(5_250_000);
        assert_eq!(
            ClientLine::decode(&line).expect("control line decodes"),
            ClientLine::Advance { to_us: 5_250_000 }
        );
        // A plain request decodes through the same entry point.
        let req = Request {
            app: "tm".into(),
            slo_ms: None,
            payload_len: 2,
            seq: Some(4),
            at_us: Some(9),
        };
        match ClientLine::decode(&req.encode()).expect("request decodes") {
            ClientLine::Request(decoded) => assert_eq!(decoded, req),
            other => panic!("expected request, got {other:?}"),
        }
        // Control lines need the v2 envelope and a well-typed field,
        // and may not smuggle request fields (the request half would
        // be silently swallowed).
        for bad in [
            r#"{"advance_us":5}"#,
            r#"{"v":2,"advance_us":"soon"}"#,
            r#"{"v":2,"advance_us":-1}"#,
            r#"{"v":2,"app":"tm","payload_len":0,"seq":7,"advance_us":5}"#,
            r#"{"v":2,"seq":7,"advance_us":5}"#,
            r#"{"v":2,"advance_us":5,"at_us":9}"#,
            r#"{"v":2,"advance_us":5,"slo_ms":100}"#,
        ] {
            let e = ClientLine::decode(bad).expect_err(&format!("accepted {bad:?}"));
            assert_eq!(e.code, ErrorCode::Malformed, "{bad:?}");
        }
    }

    #[test]
    fn replay_join_control_lines_round_trip() {
        let line = ClientLine::encode_replay_join(8);
        assert_eq!(line, r#"{"replay_join":8,"v":2}"#);
        assert_eq!(
            ClientLine::decode(&line).expect("join line decodes"),
            ClientLine::Join { parties: 8 }
        );
        // Joining as a single party is legal (a uniform client can
        // always send it), and the cap itself is accepted.
        assert!(ClientLine::decode(r#"{"v":2,"replay_join":1}"#).is_ok());
        let at_cap = format!(r#"{{"v":2,"replay_join":{MAX_REPLAY_PARTIES}}}"#);
        assert!(ClientLine::decode(&at_cap).is_ok());
        // Zero parties, absurd counts, mistyped values, missing
        // version, and hybrids with request or advance fields are all
        // rejected — the control line must stand alone.
        let over = MAX_REPLAY_PARTIES + 1;
        let too_many = format!(r#"{{"v":2,"replay_join":{over}}}"#);
        for bad in [
            r#"{"replay_join":2}"#,
            r#"{"v":2,"replay_join":0}"#,
            r#"{"v":2,"replay_join":"all"}"#,
            r#"{"v":2,"replay_join":2.5}"#,
            too_many.as_str(),
            r#"{"v":2,"replay_join":2,"app":"tm","payload_len":0}"#,
            r#"{"v":2,"replay_join":2,"seq":7}"#,
            r#"{"v":2,"replay_join":2,"advance_us":5}"#,
            r#"{"v":2,"replay_join":2,"at_us":5}"#,
        ] {
            let e = ClientLine::decode(bad).expect_err(&format!("accepted {bad:?}"));
            assert_eq!(e.code, ErrorCode::Malformed, "{bad:?}");
        }
    }

    #[test]
    fn virtual_timestamps_beyond_the_cap_are_rejected() {
        // An unbounded clock target would walk the stepped engine's
        // per-second bookkeeping events under the engine lock; the cap
        // bounds what one client line can cost.
        let over = MAX_VIRTUAL_US + 1;
        let advance = format!(r#"{{"v":2,"advance_us":{over}}}"#);
        let e = ClientLine::decode(&advance).unwrap_err();
        assert_eq!(e.code, ErrorCode::Malformed);
        assert!(e.message.contains("at most"), "{e}");
        let request = format!(r#"{{"v":2,"app":"tm","payload_len":0,"at_us":{over}}}"#);
        let e = Request::decode(&request).unwrap_err();
        assert_eq!(e.code, ErrorCode::Malformed);
        // The cap itself is accepted.
        let at_cap = format!(r#"{{"v":2,"advance_us":{MAX_VIRTUAL_US}}}"#);
        assert!(ClientLine::decode(&at_cap).is_ok());
    }

    #[test]
    fn seq_hint_recovers_seq_from_invalid_requests() {
        assert_eq!(seq_hint(r#"{"payload_len":"x","seq":7}"#), Some(7));
        assert_eq!(seq_hint("not json"), None);
        assert_eq!(seq_hint(r#"{"seq":-1}"#), None);
    }

    #[test]
    fn escaped_keys_and_values_decode_like_the_tree_parser() {
        // "v" is "v", "app" is "app": the scanner must match
        // keys by their *decoded* text, as the tree parser does.
        let line = r#"{"\u0076":2,"\u0061pp":"tm","payload_len":0}"#;
        let decoded = Request::decode(line).expect("escaped keys decode");
        assert_eq!(decoded.app, "tm");
        // And an escaped duplicate collides with its plain spelling.
        let dup = r#"{"v":2,"\u0076":2,"app":"tm","payload_len":0}"#;
        assert_eq!(Request::decode(dup).unwrap_err().code, ErrorCode::Malformed);
    }

    #[test]
    fn nested_unknown_fields_are_validated_not_ignored() {
        // Unknown structure is skipped but still held to the grammar.
        let ok = r#"{"v":2,"app":"tm","payload_len":0,"x":{"a":[1,{"b":null}],"c":"s"}}"#;
        assert!(Request::decode(ok).is_ok());
        for bad in [
            r#"{"v":2,"app":"tm","payload_len":0,"x":{"a":1,"a":2}}"#,
            r#"{"v":2,"app":"tm","payload_len":0,"x":[1,]}"#,
            r#"{"v":2,"app":"tm","payload_len":0,"x":{"a":tru}}"#,
        ] {
            assert_eq!(
                Request::decode(bad).unwrap_err().code,
                ErrorCode::Malformed,
                "{bad:?}"
            );
        }
        // The depth cap still applies inside skipped values.
        let deep = format!(
            r#"{{"v":2,"app":"tm","payload_len":0,"x":{}{}}}"#,
            "[".repeat(200),
            "]".repeat(200)
        );
        assert_eq!(
            Request::decode(&deep).unwrap_err().code,
            ErrorCode::Malformed
        );
    }
}
