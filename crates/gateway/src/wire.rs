//! The newline-delimited JSON wire protocol.
//!
//! One request per line, one response per line, UTF-8, no framing
//! beyond `\n`. Requests:
//!
//! ```text
//! {"app":"tm","slo_ms":400,"payload_len":128,"seq":5,"payload":"xx…"}
//! ```
//!
//! `app` and `payload_len` are required. `slo_ms` defaults to the
//! served pipeline's SLO. `seq` is an optional client correlation
//! number echoed back verbatim — responses to pipelined requests may
//! arrive out of order. `payload` is optional; when present its length
//! must match `payload_len` (the gateway parses but does not interpret
//! it). Responses:
//!
//! ```text
//! {"id":7,"seq":5,"outcome":"ok","latency_ms":123.4}
//! {"id":4503599627370496,"seq":6,"outcome":"dropped","edge":true,"reason":"predicted"}
//! {"id":9,"seq":7,"outcome":"violated","latency_ms":512.0}
//! ```
//!
//! `outcome` is `ok` (completed within SLO), `dropped` (removed before
//! completing — at the gateway edge when `edge` is true, inside the
//! pipeline otherwise), or `violated` (completed after its deadline).
//! Malformed requests get `{"error":"…"}` with no outcome.

use std::collections::BTreeMap;
use std::fmt;

use pard_pipeline::json::{parse, Value};

/// Largest accepted `slo_ms` (one day). The bound exists for arithmetic
/// safety, not policy: client-controlled values far above it would
/// overflow the microsecond deadline math (`ms · 1000` then
/// `now + slo`), panicking in debug builds and silently wrapping in
/// release.
pub const MAX_SLO_MS: u64 = 86_400_000;

/// A parsed client request.
#[derive(Clone, Debug, PartialEq)]
pub struct Request {
    /// Target application name (must match the served pipeline).
    pub app: String,
    /// Per-request SLO override, milliseconds.
    pub slo_ms: Option<u64>,
    /// Declared payload size, bytes.
    pub payload_len: usize,
    /// Client correlation number, echoed in the response.
    pub seq: Option<u64>,
}

/// Terminal classification carried on the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireOutcome {
    /// Completed within its SLO.
    Ok,
    /// Removed before completing.
    Dropped,
    /// Completed after its deadline.
    Violated,
}

impl WireOutcome {
    /// Wire spelling.
    pub fn label(self) -> &'static str {
        match self {
            WireOutcome::Ok => "ok",
            WireOutcome::Dropped => "dropped",
            WireOutcome::Violated => "violated",
        }
    }

    fn from_label(label: &str) -> Option<WireOutcome> {
        match label {
            "ok" => Some(WireOutcome::Ok),
            "dropped" => Some(WireOutcome::Dropped),
            "violated" => Some(WireOutcome::Violated),
            _ => None,
        }
    }
}

/// A server response.
#[derive(Clone, Debug, PartialEq)]
pub struct Response {
    /// Server-assigned request id.
    pub id: u64,
    /// Echo of the request's `seq`, if any.
    pub seq: Option<u64>,
    /// Terminal classification.
    pub outcome: WireOutcome,
    /// End-to-end latency for completed requests, milliseconds.
    pub latency_ms: Option<f64>,
    /// For drops: whether the gateway rejected the request at the edge
    /// (true) or the pipeline dropped it after admission (false).
    pub edge: bool,
    /// For drops: the short [`pard_metrics::DropReason`] label.
    pub reason: Option<String>,
}

/// A wire-format violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireError(pub String);

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for WireError {}

fn err(message: impl Into<String>) -> WireError {
    WireError(message.into())
}

impl Request {
    /// Encodes to one JSON line (no trailing newline), including a
    /// synthetic payload of `payload_len` bytes.
    pub fn encode(&self) -> String {
        let mut map = BTreeMap::new();
        map.insert("app".into(), Value::String(self.app.clone()));
        if let Some(slo) = self.slo_ms {
            map.insert("slo_ms".into(), Value::Number(slo as f64));
        }
        map.insert("payload_len".into(), Value::Number(self.payload_len as f64));
        if let Some(seq) = self.seq {
            map.insert("seq".into(), Value::Number(seq as f64));
        }
        map.insert(
            "payload".into(),
            Value::String("x".repeat(self.payload_len)),
        );
        Value::Object(map).to_json()
    }

    /// Decodes one line.
    pub fn decode(line: &str) -> Result<Request, WireError> {
        let value = parse(line).map_err(|e| err(format!("invalid JSON: {e}")))?;
        let app = value
            .get("app")
            .and_then(Value::as_str)
            .ok_or_else(|| err("missing string field \"app\""))?
            .to_string();
        let payload_len = value
            .get("payload_len")
            .and_then(Value::as_u64)
            .ok_or_else(|| err("missing integer field \"payload_len\""))?
            as usize;
        let slo_ms = match value.get("slo_ms") {
            None => None,
            Some(v) => Some(
                v.as_u64()
                    .filter(|&ms| (1..=MAX_SLO_MS).contains(&ms))
                    .ok_or_else(|| {
                        err(format!(
                            "\"slo_ms\" must be an integer in [1, {MAX_SLO_MS}]"
                        ))
                    })?,
            ),
        };
        let seq = match value.get("seq") {
            None => None,
            Some(v) => Some(
                v.as_u64()
                    .ok_or_else(|| err("\"seq\" must be a non-negative integer"))?,
            ),
        };
        if let Some(payload) = value.get("payload") {
            let payload = payload
                .as_str()
                .ok_or_else(|| err("\"payload\" must be a string"))?;
            if payload.len() != payload_len {
                return Err(err(format!(
                    "payload length {} does not match declared payload_len {payload_len}",
                    payload.len()
                )));
            }
        }
        Ok(Request {
            app,
            slo_ms,
            payload_len,
            seq,
        })
    }
}

impl Response {
    /// A within-SLO completion.
    pub fn ok(id: u64, seq: Option<u64>, latency_ms: f64) -> Response {
        Response {
            id,
            seq,
            outcome: WireOutcome::Ok,
            latency_ms: Some(latency_ms),
            edge: false,
            reason: None,
        }
    }

    /// A completion that missed its deadline.
    pub fn violated(id: u64, seq: Option<u64>, latency_ms: f64) -> Response {
        Response {
            id,
            seq,
            outcome: WireOutcome::Violated,
            latency_ms: Some(latency_ms),
            edge: false,
            reason: None,
        }
    }

    /// A drop, at the edge or inside the pipeline.
    pub fn dropped(id: u64, seq: Option<u64>, edge: bool, reason: &str) -> Response {
        Response {
            id,
            seq,
            outcome: WireOutcome::Dropped,
            latency_ms: None,
            edge,
            reason: Some(reason.to_string()),
        }
    }

    /// Encodes to one JSON line (no trailing newline).
    pub fn encode(&self) -> String {
        let mut map = BTreeMap::new();
        map.insert("id".into(), Value::Number(self.id as f64));
        if let Some(seq) = self.seq {
            map.insert("seq".into(), Value::Number(seq as f64));
        }
        map.insert("outcome".into(), Value::String(self.outcome.label().into()));
        if let Some(latency) = self.latency_ms {
            map.insert("latency_ms".into(), Value::Number(latency));
        }
        if self.edge {
            map.insert("edge".into(), Value::Bool(true));
        }
        if let Some(reason) = &self.reason {
            map.insert("reason".into(), Value::String(reason.clone()));
        }
        Value::Object(map).to_json()
    }

    /// Decodes one line.
    pub fn decode(line: &str) -> Result<Response, WireError> {
        let value = parse(line).map_err(|e| err(format!("invalid JSON: {e}")))?;
        if let Some(message) = value.get("error").and_then(Value::as_str) {
            return Err(err(format!("server error: {message}")));
        }
        let id = value
            .get("id")
            .and_then(Value::as_u64)
            .ok_or_else(|| err("missing integer field \"id\""))?;
        let outcome = value
            .get("outcome")
            .and_then(Value::as_str)
            .and_then(WireOutcome::from_label)
            .ok_or_else(|| err("missing or unknown \"outcome\""))?;
        Ok(Response {
            id,
            seq: value.get("seq").and_then(Value::as_u64),
            outcome,
            latency_ms: value.get("latency_ms").and_then(Value::as_f64),
            edge: value.get("edge").and_then(Value::as_bool).unwrap_or(false),
            reason: value
                .get("reason")
                .and_then(Value::as_str)
                .map(str::to_string),
        })
    }

    /// The line sent for unparseable requests.
    pub fn error_line(message: &str) -> String {
        let mut map = BTreeMap::new();
        map.insert("error".into(), Value::String(message.to_string()));
        Value::Object(map).to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips() {
        let requests = [
            Request {
                app: "tm".into(),
                slo_ms: Some(400),
                payload_len: 64,
                seq: Some(9),
            },
            Request {
                app: "lv".into(),
                slo_ms: None,
                payload_len: 0,
                seq: None,
            },
        ];
        for original in requests {
            let line = original.encode();
            assert!(!line.contains('\n'));
            let decoded = Request::decode(&line).expect("round trip");
            assert_eq!(decoded, original);
        }
    }

    #[test]
    fn response_round_trips() {
        let responses = [
            Response::ok(7, Some(5), 123.4),
            Response::violated(9, None, 512.0),
            Response::dropped((1 << 52) + 7, Some(6), true, "predicted"),
            Response::dropped(3, Some(2), false, "expired"),
        ];
        for original in responses {
            let line = original.encode();
            assert!(!line.contains('\n'));
            let decoded = Response::decode(&line).expect("round trip");
            assert_eq!(decoded, original);
        }
    }

    #[test]
    fn request_decode_rejects_malformed_lines() {
        for bad in [
            "",
            "not json",
            "{}",
            r#"{"app":"tm"}"#,
            r#"{"app":4,"payload_len":8}"#,
            r#"{"app":"tm","payload_len":-3}"#,
            r#"{"app":"tm","payload_len":8,"slo_ms":0}"#,
            r#"{"app":"tm","payload_len":8,"slo_ms":"fast"}"#,
            // Above MAX_SLO_MS: would overflow the deadline arithmetic.
            r#"{"app":"tm","payload_len":8,"slo_ms":1152921504606846976}"#,
            r#"{"app":"tm","payload_len":8,"payload":"xy"}"#,
            r#"{"app":"tm","payload_len":8,"seq":1.5}"#,
        ] {
            assert!(Request::decode(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn payload_length_is_validated_when_present() {
        let good = r#"{"app":"tm","payload_len":2,"payload":"ab"}"#;
        assert!(Request::decode(good).is_ok());
        let bad = r#"{"app":"tm","payload_len":3,"payload":"ab"}"#;
        let e = Request::decode(bad).unwrap_err();
        assert!(e.0.contains("does not match"), "{e}");
    }

    #[test]
    fn encoded_payload_matches_declared_length() {
        let req = Request {
            app: "gm".into(),
            slo_ms: None,
            payload_len: 100,
            seq: None,
        };
        let decoded = Request::decode(&req.encode()).unwrap();
        assert_eq!(decoded.payload_len, 100);
    }

    #[test]
    fn error_lines_decode_as_errors() {
        let line = Response::error_line("bad thing");
        let e = Response::decode(&line).unwrap_err();
        assert!(e.0.contains("bad thing"));
    }

    #[test]
    fn response_decode_rejects_unknown_outcome() {
        assert!(Response::decode(r#"{"id":1,"outcome":"maybe"}"#).is_err());
        assert!(Response::decode(r#"{"outcome":"ok"}"#).is_err());
    }
}
