//! Online re-planning and graceful degradation for edge admission.
//!
//! Static PARD computes its admission floor from *profiled* stage
//! latencies. Under dynamic interference — a co-located tenant
//! stealing cycles, a thermally throttled accelerator — the profile
//! goes stale: the floor admits requests the slowed pipeline can no
//! longer finish, and goodput collapses exactly where the paper's
//! argument needs it most. This module closes the loop:
//!
//! * [`AdaptiveState`] folds the engine's own flight-recorder stream
//!   ([`ObsKind::Stage`] execution spans, completions, pipeline drops)
//!   into a per-module latency estimator — an EWMA plus a rolling
//!   quantile of the observed/profiled execution ratio.
//! * A **re-planner** with a hysteresis band: when a module's observed
//!   ratio drifts above `enter_ratio`, the admission floor switches to
//!   the observed estimate; it falls back to the profile only once the
//!   ratio recovers below `exit_ratio`, so the floor does not flap on
//!   noise.
//! * A **brownout controller**: when the windowed violation + drop
//!   rate breaches its envelope, the whole floor is tightened by a
//!   multiplicative step (and relaxed stepwise on recovery), shedding
//!   load at the edge until the pipeline is healthy again.
//!
//! Every floor movement is stamped into the same flight recorder as an
//! [`ObsKind::FloorAdjust`] event, so a post-mortem can replay exactly
//! when and why admission tightened.
//!
//! # Determinism
//!
//! The estimator is updated *pull-style*: callers drain the recorder
//! with [`pard_obs::FlightRecorder::read_since`] and fold the new
//! events. Every state transition — EWMA update, hysteresis latch,
//! brownout step — happens per event during the fold, never per drain,
//! so the state after folding events `[0, n)` is a pure function of
//! that prefix no matter how wall-clock polling partitioned it into
//! drains. On the deterministic replay path the gateway folds right
//! after steering the virtual clock, which makes every adaptive
//! admission decision a pure function of the schedule and the seed —
//! the same discipline as the rest of the replay machinery.

use pard_engine_api::EdgeState;
use pard_obs::{FlightRecorder, FloorCause, ObsKind};

/// Tuning for the online estimator, the re-planner's hysteresis band,
/// and the brownout envelope. `Default` is the configuration the
/// harness scenarios and the gateway binary use.
#[derive(Clone, Copy, Debug)]
pub struct AdaptiveConfig {
    /// EWMA weight of one new observed/profiled ratio sample, in
    /// `(0, 1]`.
    pub alpha: f64,
    /// Rolling quantile of the ratio window the estimator takes (the
    /// floor uses `max(ewma, quantile)` — robust to a few fast
    /// batches hiding a slow worker).
    pub quantile: f64,
    /// Ratio samples retained per module for the quantile.
    pub window: usize,
    /// Hysteresis entry: adopt the observed estimate once
    /// observed/profiled exceeds this.
    pub enter_ratio: f64,
    /// Hysteresis exit: fall back to the profile once the ratio drops
    /// below this. Must be below `enter_ratio`.
    pub exit_ratio: f64,
    /// Stage samples a module needs before the re-planner may act on
    /// it.
    pub min_samples: u64,
    /// Terminal outcomes (completions + pipeline drops) in the
    /// brownout's violation window.
    pub brownout_window: usize,
    /// Windowed violation + drop fraction that trips one brownout
    /// tightening step.
    pub brownout_threshold: f64,
    /// Windowed fraction below which one recovery step is taken.
    pub brownout_recover: f64,
    /// Multiplicative floor scale applied per brownout step.
    pub brownout_step: f64,
    /// Ceiling on the cumulative brownout scale.
    pub brownout_max: f64,
    /// Consecutive edge sheds with no admitted evidence in between
    /// that trigger one downward probe of the latched estimates. A
    /// floor that exceeds every request's deadline admits nothing, so
    /// no stage samples or terminal outcomes arrive and the latch
    /// would otherwise hold forever; probing breaks the black hole.
    pub probe_after: usize,
    /// Safety factor applied on top of a *latched* observed estimate.
    /// The edge floor's queue term counts whole batch rounds and
    /// assumes zero batch-fill wait, so at a degraded module the queue
    /// states just below the shed threshold admit requests the slowed
    /// pipeline finishes late; the margin moves the threshold below
    /// that doomed band. `1.0` disables it.
    pub floor_margin: f64,
}

impl Default for AdaptiveConfig {
    fn default() -> AdaptiveConfig {
        AdaptiveConfig {
            alpha: 0.3,
            quantile: 0.9,
            window: 64,
            enter_ratio: 1.15,
            exit_ratio: 1.05,
            min_samples: 8,
            brownout_window: 64,
            brownout_threshold: 0.3,
            brownout_recover: 0.05,
            brownout_step: 1.25,
            brownout_max: 4.0,
            probe_after: 16,
            floor_margin: 1.5,
        }
    }
}

/// One floor movement the fold produced; the caller records it as an
/// [`ObsKind::FloorAdjust`] once the adjusted floor's `L_sub` is
/// known.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FloorAdjustment {
    /// Module whose estimate moved (the entry module for brownout
    /// steps).
    pub module: u16,
    /// What moved it.
    pub cause: FloorCause,
    /// The observed estimate after the movement, microseconds.
    pub observed_us: u64,
    /// The static profile's value for the same term, microseconds.
    pub profiled_us: u64,
}

/// Per-module feed: EWMA + rolling window of observed/profiled
/// execution ratios, plus the hysteresis latch.
#[derive(Clone, Debug)]
struct ModuleFeed {
    ewma: f64,
    window: Vec<f64>,
    next: usize,
    samples: u64,
    /// Hysteresis latch: the floor currently uses the observed
    /// estimate instead of the profile.
    active: bool,
    /// The ratio the floor currently applies while `active` (frozen at
    /// latch transitions only when it *rises*, so the floor tracks
    /// worsening interference without waiting for a re-latch).
    applied: f64,
}

impl ModuleFeed {
    fn new() -> ModuleFeed {
        ModuleFeed {
            ewma: 1.0,
            window: Vec::new(),
            next: 0,
            samples: 0,
            active: false,
            applied: 1.0,
        }
    }

    fn push(&mut self, ratio: f64, capacity: usize) {
        self.samples += 1;
        if self.window.len() < capacity.max(1) {
            self.window.push(ratio);
        } else {
            self.window[self.next] = ratio;
            self.next = (self.next + 1) % self.window.len();
        }
    }

    /// `max(ewma, quantile)` — the estimate the re-planner compares
    /// against the hysteresis band.
    fn estimate(&self, quantile: f64) -> f64 {
        let mut sorted = self.window.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("ratios are finite"));
        let q = match sorted.len() {
            0 => 1.0,
            n => {
                let ix = ((quantile * n as f64).ceil() as usize).clamp(1, n) - 1;
                sorted[ix]
            }
        };
        self.ewma.max(q)
    }
}

/// The adaptive layer's whole mutable state: the recorder cursor, the
/// per-module feeds, the brownout window, and the audit trail of
/// adjustments the last fold produced.
pub struct AdaptiveState {
    config: AdaptiveConfig,
    /// Resume point for [`FlightRecorder::read_since`].
    cursor: u64,
    modules: Vec<ModuleFeed>,
    /// Ring of recent terminal outcomes: `true` = violated or dropped
    /// in the pipeline.
    outcomes: Vec<bool>,
    outcomes_next: usize,
    /// Brownout stepping cooldown, counted in terminal outcomes — a
    /// step (either direction) is allowed only when this reaches zero,
    /// so the controller reacts to *new* evidence, not to every fold.
    cooldown: usize,
    /// Cumulative brownout scale; `1.0` = off.
    brownout_scale: f64,
    /// Edge sheds folded since the last admitted evidence (stage
    /// sample or terminal outcome). Reaching `config.probe_after`
    /// probes the latched estimates one step toward the profile.
    shed_streak: usize,
    /// Profiled per-module execution latencies, captured from the
    /// pristine engine state (static for a given engine).
    baseline_ms: Vec<f64>,
}

impl AdaptiveState {
    /// Fresh state; the module count is learned from the first
    /// [`AdaptiveState::observe_and_adjust`] call.
    pub fn new(config: AdaptiveConfig) -> AdaptiveState {
        assert!(config.alpha > 0.0 && config.alpha <= 1.0, "alpha in (0,1]");
        assert!(
            config.exit_ratio < config.enter_ratio,
            "hysteresis band is empty: exit {} >= enter {}",
            config.exit_ratio,
            config.enter_ratio
        );
        assert!(
            config.brownout_step > 1.0,
            "a brownout step must tighten the floor"
        );
        AdaptiveState {
            config,
            cursor: 0,
            modules: Vec::new(),
            outcomes: Vec::new(),
            outcomes_next: 0,
            cooldown: 0,
            brownout_scale: 1.0,
            shed_streak: 0,
            baseline_ms: Vec::new(),
        }
    }

    /// The current cumulative brownout scale (`1.0` = not browned
    /// out).
    pub fn brownout_scale(&self) -> f64 {
        self.brownout_scale
    }

    /// Whether any module's floor currently uses the observed estimate.
    pub fn replanned(&self) -> bool {
        self.modules.iter().any(|m| m.active)
    }

    /// Drains the recorder, folds the new events into the estimator,
    /// and rewrites `state.exec_ms` with the effective (observed ×
    /// brownout) execution estimates. Returns the floor movements this
    /// fold produced, for the caller to stamp into the recorder.
    ///
    /// `state` must be the engine's pristine edge state (profiled
    /// `exec_ms`); `source` is the pipeline's entry module, charged
    /// with brownout adjustments in the audit trail.
    pub fn observe_and_adjust(
        &mut self,
        recorder: &FlightRecorder,
        state: &mut EdgeState,
        source: usize,
    ) -> Vec<FloorAdjustment> {
        self.baseline_ms.clone_from(&state.exec_ms);
        if self.modules.len() < state.exec_ms.len() {
            self.modules
                .resize_with(state.exec_ms.len(), ModuleFeed::new);
        }
        let (events, cursor) = recorder.read_since(self.cursor);
        self.cursor = cursor;
        let mut adjustments = Vec::new();
        for event in &events {
            match event.kind {
                ObsKind::Stage {
                    module,
                    exec_start_us,
                    exec_end_us,
                    ..
                } => {
                    self.shed_streak = 0;
                    self.fold_stage(module, exec_start_us, exec_end_us, &mut adjustments);
                }
                ObsKind::Completed {
                    finished_us,
                    deadline_us,
                } => {
                    self.shed_streak = 0;
                    self.fold_outcome(finished_us > deadline_us, source, &mut adjustments);
                }
                ObsKind::Dropped { .. } => {
                    self.shed_streak = 0;
                    self.fold_outcome(true, source, &mut adjustments);
                }
                // A shed at the edge is the floor doing its job, not a
                // bad ending — it feeds the brownout window as a
                // healthy outcome (so a fully shedding floor still
                // relaxes) and a long unbroken run of sheds probes the
                // latched estimates back toward the profile.
                ObsKind::EdgeDecision {
                    reason: Some(_), ..
                } => self.fold_shed(source, &mut adjustments),
                // Admitted edge decisions, merges, and prior floor
                // audit events carry no latency evidence.
                ObsKind::EdgeDecision { reason: None, .. }
                | ObsKind::MergeRelease { .. }
                | ObsKind::FloorAdjust { .. } => {}
            }
        }
        // Rewrite the execution estimates the floor is computed from.
        // The margin rides only on latched modules: an on-profile
        // module keeps its exact profiled floor.
        for (m, exec) in state.exec_ms.iter_mut().enumerate() {
            let feed = &self.modules[m];
            let ratio = if feed.active {
                feed.applied * self.config.floor_margin.max(1.0)
            } else {
                1.0
            };
            *exec = self.baseline_ms[m] * ratio * self.brownout_scale;
        }
        adjustments
    }

    fn fold_stage(
        &mut self,
        module: u16,
        exec_start_us: u64,
        exec_end_us: u64,
        adjustments: &mut Vec<FloorAdjustment>,
    ) {
        let m = module as usize;
        if m >= self.modules.len() || exec_end_us <= exec_start_us {
            return;
        }
        let profiled_ms = self.baseline_ms[m];
        if profiled_ms <= 0.0 {
            return;
        }
        let observed_ms = (exec_end_us - exec_start_us) as f64 / 1e3;
        let ratio = observed_ms / profiled_ms;
        let config = self.config;
        let feed = &mut self.modules[m];
        feed.ewma = if feed.samples == 0 {
            ratio
        } else {
            config.alpha * ratio + (1.0 - config.alpha) * feed.ewma
        };
        feed.push(ratio, config.window);
        if feed.samples < config.min_samples {
            return;
        }
        let estimate = feed.estimate(config.quantile);
        // Hysteresis latch, evaluated per sample: enter above the
        // band, exit below it, and while latched keep tracking a
        // *worsening* estimate so deepening interference tightens the
        // floor without a re-latch.
        let moved = if !feed.active && estimate >= config.enter_ratio {
            feed.active = true;
            feed.applied = estimate;
            true
        } else if feed.active && estimate <= config.exit_ratio {
            feed.active = false;
            feed.applied = 1.0;
            true
        } else if feed.active && estimate > feed.applied * 1.10 {
            feed.applied = estimate;
            true
        } else {
            false
        };
        if moved {
            adjustments.push(FloorAdjustment {
                module,
                cause: FloorCause::Replan,
                observed_us: (profiled_ms * feed.applied.max(1.0) * 1e3) as u64,
                profiled_us: (profiled_ms * 1e3) as u64,
            });
        }
    }

    fn fold_outcome(
        &mut self,
        violated: bool,
        source: usize,
        adjustments: &mut Vec<FloorAdjustment>,
    ) {
        let capacity = self.config.brownout_window.max(1);
        if self.outcomes.len() < capacity {
            self.outcomes.push(violated);
        } else {
            self.outcomes[self.outcomes_next] = violated;
            self.outcomes_next = (self.outcomes_next + 1) % self.outcomes.len();
        }
        if self.cooldown > 0 {
            self.cooldown -= 1;
            return;
        }
        // Only judge a reasonably full window; a couple of early
        // violations must not brown the gateway out at startup.
        if self.outcomes.len() < capacity / 2 {
            return;
        }
        let bad = self.outcomes.iter().filter(|&&v| v).count() as f64;
        let rate = bad / self.outcomes.len() as f64;
        let profiled_ms = self.baseline_ms.get(source).copied().unwrap_or(0.0);
        let stepped = if rate >= self.config.brownout_threshold
            && self.brownout_scale < self.config.brownout_max
        {
            self.brownout_scale =
                (self.brownout_scale * self.config.brownout_step).min(self.config.brownout_max);
            Some(FloorCause::Brownout)
        } else if rate <= self.config.brownout_recover && self.brownout_scale > 1.0 {
            self.brownout_scale = (self.brownout_scale / self.config.brownout_step).max(1.0);
            Some(FloorCause::Recover)
        } else {
            None
        };
        if let Some(cause) = stepped {
            // One step per half-window of fresh evidence, so the scale
            // ramps at a rate set by outcomes, not by fold frequency.
            self.cooldown = capacity / 2;
            adjustments.push(FloorAdjustment {
                module: source as u16,
                cause,
                observed_us: (profiled_ms * self.brownout_scale * 1e3) as u64,
                profiled_us: (profiled_ms * 1e3) as u64,
            });
        }
    }

    /// One folded edge shed. Counts as a healthy terminal outcome (the
    /// request was refused cheaply, not served late), and after
    /// `probe_after` consecutive sheds with no admitted evidence the
    /// latched estimates decay one multiplicative step toward the
    /// profile. Without this a floor that exceeds every deadline
    /// starves itself of samples and stays shut forever; with it the
    /// floor probes downward until traffic admits again and real
    /// observations resume — if the slowdown persists, the first fresh
    /// samples re-latch immediately.
    fn fold_shed(&mut self, source: usize, adjustments: &mut Vec<FloorAdjustment>) {
        self.fold_outcome(false, source, adjustments);
        self.shed_streak += 1;
        if self.shed_streak < self.config.probe_after.max(1) {
            return;
        }
        self.shed_streak = 0;
        let config = self.config;
        for m in 0..self.modules.len() {
            let feed = &mut self.modules[m];
            if !feed.active {
                continue;
            }
            feed.applied = (feed.applied / config.brownout_step).max(1.0);
            if feed.applied <= config.exit_ratio {
                feed.active = false;
                feed.applied = 1.0;
            }
            // Restart the estimator at the probe level: fresh samples
            // decide quickly whether the slowdown really ended, instead
            // of fighting a window full of storm-era ratios.
            feed.ewma = feed.applied;
            feed.window.clear();
            feed.next = 0;
            let profiled_ms = self.baseline_ms.get(m).copied().unwrap_or(0.0);
            adjustments.push(FloorAdjustment {
                module: m as u16,
                cause: FloorCause::Recover,
                observed_us: (profiled_ms * feed.applied * 1e3) as u64,
                profiled_us: (profiled_ms * 1e3) as u64,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pard_obs::ObsEvent;
    use pard_sim::SimDuration;

    fn state() -> EdgeState {
        EdgeState {
            queue_depths: vec![0, 0],
            workers: vec![1, 1],
            batch_sizes: vec![4, 4],
            exec_ms: vec![40.0, 20.0],
            slo: SimDuration::from_millis(400),
        }
    }

    fn stage(t_us: u64, module: u16, exec_ms: u64) -> ObsEvent {
        ObsEvent {
            t_us,
            req: t_us,
            kind: ObsKind::Stage {
                module,
                worker: 0,
                batch: 4,
                arrived_us: t_us,
                batched_us: t_us,
                exec_start_us: t_us,
                exec_end_us: t_us + exec_ms * 1_000,
            },
        }
    }

    fn done(t_us: u64, violated: bool) -> ObsEvent {
        ObsEvent {
            t_us,
            req: t_us,
            kind: ObsKind::Completed {
                finished_us: t_us + 10,
                deadline_us: if violated { t_us } else { t_us + 20 },
            },
        }
    }

    fn shed(t_us: u64) -> ObsEvent {
        ObsEvent {
            t_us,
            req: t_us,
            kind: ObsKind::EdgeDecision {
                lead_us: 0,
                sub_us: 500_000,
                slack_us: -100_000,
                reason: Some(pard_metrics::DropReason::PredictedViolation),
            },
        }
    }

    #[test]
    fn matching_latencies_leave_the_floor_alone() {
        let recorder = FlightRecorder::with_capacity(256);
        for i in 0..32u64 {
            recorder.record(&stage(i * 1_000, 0, 40));
            recorder.record(&stage(i * 1_000, 1, 20));
        }
        let mut adaptive = AdaptiveState::new(AdaptiveConfig::default());
        let mut s = state();
        let adjustments = adaptive.observe_and_adjust(&recorder, &mut s, 0);
        assert!(adjustments.is_empty(), "{adjustments:?}");
        assert_eq!(s.exec_ms, vec![40.0, 20.0]);
        assert!(!adaptive.replanned());
    }

    #[test]
    fn sustained_slowdown_latches_the_observed_estimate() {
        let recorder = FlightRecorder::with_capacity(256);
        // Module 1 runs 3x slow; module 0 stays on profile.
        for i in 0..32u64 {
            recorder.record(&stage(i * 1_000, 0, 40));
            recorder.record(&stage(i * 1_000, 1, 60));
        }
        let mut adaptive = AdaptiveState::new(AdaptiveConfig {
            floor_margin: 1.0,
            ..AdaptiveConfig::default()
        });
        let mut s = state();
        let adjustments = adaptive.observe_and_adjust(&recorder, &mut s, 0);
        assert!(adaptive.replanned());
        assert!(
            adjustments
                .iter()
                .any(|a| a.module == 1 && a.cause == FloorCause::Replan),
            "{adjustments:?}"
        );
        assert_eq!(s.exec_ms[0], 40.0, "on-profile module untouched");
        assert!(
            (s.exec_ms[1] - 60.0).abs() < 1.0,
            "observed estimate adopted: {}",
            s.exec_ms[1]
        );
    }

    #[test]
    fn the_floor_margin_rides_on_latched_modules_only() {
        let recorder = FlightRecorder::with_capacity(256);
        for i in 0..32u64 {
            recorder.record(&stage(i * 1_000, 0, 40));
            recorder.record(&stage(i * 1_000, 1, 60));
        }
        let mut adaptive = AdaptiveState::new(AdaptiveConfig::default());
        let mut s = state();
        adaptive.observe_and_adjust(&recorder, &mut s, 0);
        assert_eq!(s.exec_ms[0], 40.0, "on-profile module unmargined");
        assert!(
            (s.exec_ms[1] - 90.0).abs() < 1.5,
            "latched estimate carries the 1.5x safety margin: {}",
            s.exec_ms[1]
        );
    }

    #[test]
    fn hysteresis_exits_only_below_the_band() {
        let recorder = FlightRecorder::with_capacity(1024);
        let mut adaptive = AdaptiveState::new(AdaptiveConfig::default());
        let mut s = state();
        for i in 0..32u64 {
            recorder.record(&stage(i * 1_000, 1, 60));
        }
        adaptive.observe_and_adjust(&recorder, &mut s, 0);
        assert!(adaptive.replanned());
        // Recovery: enough on-profile samples to pull the whole
        // window and the EWMA back under exit_ratio.
        for i in 32..160u64 {
            recorder.record(&stage(i * 1_000, 1, 20));
        }
        let mut s = state();
        let adjustments = adaptive.observe_and_adjust(&recorder, &mut s, 0);
        assert!(!adaptive.replanned(), "latch released on recovery");
        assert!(
            adjustments
                .iter()
                .any(|a| a.module == 1 && a.cause == FloorCause::Replan),
            "the release is audited too: {adjustments:?}"
        );
        assert_eq!(s.exec_ms[1], 20.0, "floor back on the profile");
    }

    #[test]
    fn violation_storm_steps_the_brownout_and_recovery_relaxes_it() {
        let recorder = FlightRecorder::with_capacity(4096);
        let config = AdaptiveConfig::default();
        let mut adaptive = AdaptiveState::new(config);
        let mut s = state();
        for i in 0..64u64 {
            recorder.record(&done(i * 1_000, true));
        }
        let adjustments = adaptive.observe_and_adjust(&recorder, &mut s, 0);
        assert!(adaptive.brownout_scale() > 1.0);
        assert!(
            adjustments
                .iter()
                .any(|a| a.cause == FloorCause::Brownout && a.module == 0),
            "{adjustments:?}"
        );
        assert!(
            s.exec_ms[0] > 40.0 && s.exec_ms[1] > 20.0,
            "whole floor tightened"
        );
        // A clean stretch relaxes stepwise back to 1.0.
        let mut relaxed = false;
        for round in 0..8u64 {
            for i in 0..64u64 {
                recorder.record(&done((100 + round * 64 + i) * 1_000, false));
            }
            let adjustments = adaptive.observe_and_adjust(&recorder, &mut state(), 0);
            relaxed |= adjustments.iter().any(|a| a.cause == FloorCause::Recover);
        }
        assert!(relaxed, "recovery steps were audited");
        assert_eq!(adaptive.brownout_scale(), 1.0, "fully recovered");
    }

    #[test]
    fn full_shedding_cannot_latch_the_floor_shut_forever() {
        // Latch a deep slowdown and ratchet the brownout, then feed
        // nothing but edge sheds — the regime a floor above every
        // deadline produces. The probe path must walk both the latched
        // estimate and the brownout scale back to the profile.
        let recorder = FlightRecorder::with_capacity(8192);
        let mut adaptive = AdaptiveState::new(AdaptiveConfig::default());
        for i in 0..32u64 {
            recorder.record(&stage(i * 1_000, 1, 60));
        }
        for i in 0..64u64 {
            recorder.record(&done((32 + i) * 1_000, true));
        }
        adaptive.observe_and_adjust(&recorder, &mut state(), 0);
        assert!(adaptive.replanned());
        assert!(adaptive.brownout_scale() > 1.0);
        // Nothing but sheds from here on.
        let mut recovered = false;
        for round in 0..64u64 {
            for i in 0..32u64 {
                recorder.record(&shed((1_000 + round * 32 + i) * 1_000));
            }
            let adjustments = adaptive.observe_and_adjust(&recorder, &mut state(), 0);
            recovered |= adjustments.iter().any(|a| a.cause == FloorCause::Recover);
        }
        assert!(recovered, "probe steps were audited");
        assert!(!adaptive.replanned(), "latch released by probing");
        assert_eq!(adaptive.brownout_scale(), 1.0, "brownout fully relaxed");
        let mut s = state();
        adaptive.observe_and_adjust(&recorder, &mut s, 0);
        assert_eq!(s.exec_ms, vec![40.0, 20.0], "floor back on the profile");
    }

    #[test]
    fn folding_is_independent_of_drain_partitioning() {
        // The same event stream folded in one drain or many must land
        // in the same state — the determinism contract the replay path
        // relies on.
        let mut events = Vec::new();
        for i in 0..48u64 {
            events.push(stage(i * 1_000, 1, 55));
            if i % 3 == 0 {
                events.push(done(i * 1_000, i % 2 == 0));
            }
            if i % 5 == 0 {
                events.push(shed(i * 1_000));
            }
        }
        for i in 48..120u64 {
            events.push(shed(i * 1_000));
        }
        let run = |chunks: &[usize]| {
            let recorder = FlightRecorder::with_capacity(1024);
            let mut adaptive = AdaptiveState::new(AdaptiveConfig::default());
            let mut ix = 0;
            for &chunk in chunks {
                for _ in 0..chunk {
                    if ix < events.len() {
                        recorder.record(&events[ix]);
                        ix += 1;
                    }
                }
                // Like `fresh_snapshot`: every call starts from the
                // engine's pristine profiled state.
                adaptive.observe_and_adjust(&recorder, &mut state(), 0);
            }
            while ix < events.len() {
                recorder.record(&events[ix]);
                ix += 1;
            }
            let mut s = state();
            adaptive.observe_and_adjust(&recorder, &mut s, 0);
            (s.exec_ms.clone(), adaptive.brownout_scale())
        };
        let one_shot = run(&[]);
        let per_event = run(&vec![1; 64]);
        let ragged = run(&[3, 1, 17, 2, 29]);
        assert_eq!(one_shot, per_event);
        assert_eq!(one_shot, ragged);
    }
}
