//! The gateway loopback benchmark matrix — the checked-in throughput
//! trajectory (`BENCH_gateway.json`).
//!
//! Goodput claims are only credible with measured numbers, so the hot
//! path has a fixed, reproducible benchmark: every case boots a real
//! [`crate::Gateway`] on an ephemeral loopback socket, drives it with
//! the in-tree load generator, and reports wall-clock throughput plus
//! client-measured p50/p99 RTT. The matrix crosses pipeline shape
//! (chain `tm`, DAG `da`), backend (deterministic sim, live threaded
//! runtime), and driving discipline (closed loop saturating 8
//! connections; open loop replaying a trace):
//!
//! | case              | drive                      | what it stresses             |
//! |-------------------|----------------------------|------------------------------|
//! | `closed/tm/sim`   | 8 conns, 1 outstanding each| full RTT: wire + admission + submit + pump + dispatch |
//! | `closed/da/sim`   | as above, DAG app          | DAG critical-path admission  |
//! | `closed/tm/live`  | as above, live backend     | no-regression guard on live  |
//! | `closed/da/live`  | as above                   | live DAG split/merge         |
//! | `open/tm/sim`     | virtual-paced replay, 1 conn| wire decode + replay advance at full socket speed |
//! | `open/tm/live`    | wall-paced trace, 4 conns  | pacing fidelity on live      |
//!
//! Run it with `pard-loadgen --bench quick|full [--out FILE]
//! [--check BENCH_gateway.json]`. `--check` compares each case's
//! throughput against the *last* run recorded in the checked-in
//! trajectory and fails below `0.5×` — a deliberately loose bound, CI
//! machines are noisy; the precise before/after numbers live in the
//! trajectory file, regenerated on one machine (see README
//! "Performance").

use std::collections::BTreeMap;
use std::io;

use pard_engine_api::{Backend, ClusterConfig, EngineBuilder, LiveConfig};
use pard_pipeline::json::{parse, Value};
use pard_pipeline::AppKind;
use pard_workload::constant;

use crate::loadgen::{self, LoadMode, LoadgenConfig, LoadgenReport, Pace};
use crate::server::{Gateway, GatewayConfig};

/// Fraction of gross regression `check_against` tolerates: a case fails
/// only below `0.5×` the recorded throughput. When the runs being
/// compared used different effort levels (CI's `quick` smoke against a
/// recorded `full` trajectory), the floor halves again to `0.25×` —
/// short runs amortise connection/process startup poorly, and CI
/// machines are unrelated to the recording machine.
pub const REGRESSION_FLOOR: f64 = 0.5;

/// Workers per module, every case (matches the CI smoke invocations).
const WORKERS: usize = 2;

/// Virtual-time compression for live-backend cases: exec durations are
/// tens of virtual milliseconds, so 25× keeps the whole matrix under a
/// minute of wall time without starving the pipeline.
const LIVE_SCALE: f64 = 25.0;

/// Benchmark effort: `Quick` for CI smoke, `Full` for the checked-in
/// trajectory numbers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Effort {
    /// Small request counts; finishes in a few seconds.
    Quick,
    /// The request counts the trajectory file records.
    Full,
}

impl Effort {
    /// Label used in the JSON record.
    pub fn label(self) -> &'static str {
        match self {
            Effort::Quick => "quick",
            Effort::Full => "full",
        }
    }
}

/// One measured matrix case.
#[derive(Clone, Debug)]
pub struct BenchRow {
    /// Stable case name, `mode/app/backend`.
    pub case: String,
    /// Parallel client connections driven.
    pub connections: usize,
    /// Requests put on the wire.
    pub sent: usize,
    /// Requests answered with any outcome (including edge rejects).
    pub answered: usize,
    /// Completed within SLO.
    pub ok: usize,
    /// Rejected proactively at the edge.
    pub dropped_edge: usize,
    /// Answered requests per wall-clock second — the hot-path figure.
    pub throughput_rps: f64,
    /// Client-measured wall RTT, milliseconds.
    pub p50_ms: f64,
    /// Client-measured wall RTT, milliseconds.
    pub p99_ms: f64,
    /// Wall-clock run time, seconds.
    pub elapsed_s: f64,
}

impl BenchRow {
    fn from_report(case: &str, connections: usize, report: &LoadgenReport) -> BenchRow {
        let answered = report.ok
            + report.violated
            + report.dropped_edge
            + report.dropped_pipeline
            + report.errors;
        // Wall RTT: the loadgen stores virtual latencies (rtt ×
        // time_scale); divide the scale back out.
        let scale = if report.time_scale > 0.0 {
            report.time_scale
        } else {
            1.0
        };
        BenchRow {
            case: case.to_string(),
            connections,
            sent: report.sent,
            answered,
            ok: report.ok,
            dropped_edge: report.dropped_edge,
            throughput_rps: if report.elapsed_s > 0.0 {
                answered as f64 / report.elapsed_s
            } else {
                0.0
            },
            p50_ms: report.latency_quantile(0.50) / scale,
            p99_ms: report.latency_quantile(0.99) / scale,
            elapsed_s: report.elapsed_s,
        }
    }

    /// One-row JSON object.
    pub fn to_value(&self) -> Value {
        let mut map = BTreeMap::new();
        map.insert("case".into(), Value::String(self.case.clone()));
        map.insert("connections".into(), Value::Number(self.connections as f64));
        map.insert("sent".into(), Value::Number(self.sent as f64));
        map.insert("answered".into(), Value::Number(self.answered as f64));
        map.insert("ok".into(), Value::Number(self.ok as f64));
        map.insert(
            "dropped_edge".into(),
            Value::Number(self.dropped_edge as f64),
        );
        map.insert(
            "throughput_rps".into(),
            Value::Number(round2(self.throughput_rps)),
        );
        map.insert("p50_ms".into(), Value::Number(round3(self.p50_ms)));
        map.insert("p99_ms".into(), Value::Number(round3(self.p99_ms)));
        map.insert("elapsed_s".into(), Value::Number(round3(self.elapsed_s)));
        Value::Object(map)
    }

    /// Parses a row back from its JSON object.
    pub fn from_value(value: &Value) -> Option<BenchRow> {
        Some(BenchRow {
            case: value.get("case")?.as_str()?.to_string(),
            connections: value.get("connections")?.as_u64()? as usize,
            sent: value.get("sent")?.as_u64()? as usize,
            answered: value.get("answered")?.as_u64()? as usize,
            ok: value.get("ok")?.as_u64()? as usize,
            dropped_edge: value.get("dropped_edge")?.as_u64()? as usize,
            throughput_rps: value.get("throughput_rps")?.as_f64()?,
            p50_ms: value.get("p50_ms")?.as_f64()?,
            p99_ms: value.get("p99_ms")?.as_f64()?,
            elapsed_s: value.get("elapsed_s")?.as_f64()?,
        })
    }
}

fn round2(x: f64) -> f64 {
    (x * 100.0).round() / 100.0
}

fn round3(x: f64) -> f64 {
    (x * 1000.0).round() / 1000.0
}

/// One complete matrix run.
#[derive(Clone, Debug)]
pub struct BenchRun {
    /// Free-form label (e.g. `pr5-after`).
    pub label: String,
    /// The effort level the run used.
    pub effort: &'static str,
    /// Every measured case.
    pub rows: Vec<BenchRow>,
}

impl BenchRun {
    /// The run as a JSON object.
    pub fn to_value(&self) -> Value {
        let mut map = BTreeMap::new();
        map.insert("label".into(), Value::String(self.label.clone()));
        map.insert("effort".into(), Value::String(self.effort.into()));
        map.insert(
            "rows".into(),
            Value::Array(self.rows.iter().map(BenchRow::to_value).collect()),
        );
        Value::Object(map)
    }

    /// Parses a run back from its JSON object.
    pub fn from_value(value: &Value) -> Option<BenchRun> {
        let rows = value
            .get("rows")?
            .as_array()?
            .iter()
            .map(BenchRow::from_value)
            .collect::<Option<Vec<_>>>()?;
        Some(BenchRun {
            label: value.get("label")?.as_str()?.to_string(),
            effort: match value.get("effort")?.as_str()? {
                "full" => "full",
                _ => "quick",
            },
            rows,
        })
    }

    /// Human-readable table.
    pub fn render(&self) -> String {
        let mut out = format!("gateway bench matrix ({} · {})\n", self.label, self.effort);
        out.push_str(
            "case              conns    sent  answered      ok  edge-rej   req/s   p50 ms   p99 ms\n",
        );
        for row in &self.rows {
            out.push_str(&format!(
                "{:<17} {:>5} {:>7} {:>9} {:>7} {:>9} {:>9.0} {:>8.3} {:>8.3}\n",
                row.case,
                row.connections,
                row.sent,
                row.answered,
                row.ok,
                row.dropped_edge,
                row.throughput_rps,
                row.p50_ms,
                row.p99_ms,
            ));
        }
        out
    }
}

/// The checked-in trajectory: an ordered list of runs, newest last.
#[derive(Clone, Debug, Default)]
pub struct Trajectory {
    /// Runs in recording order.
    pub runs: Vec<BenchRun>,
}

impl Trajectory {
    /// Serialises the trajectory to pretty-enough JSON (one run per
    /// parse; the whole document is a single object).
    pub fn to_json(&self) -> String {
        let mut map = BTreeMap::new();
        map.insert("bench".into(), Value::String("gateway_trajectory".into()));
        map.insert("schema".into(), Value::Number(1.0));
        map.insert(
            "runs".into(),
            Value::Array(self.runs.iter().map(BenchRun::to_value).collect()),
        );
        Value::Object(map).to_json()
    }

    /// Parses a trajectory document.
    pub fn from_json(text: &str) -> Result<Trajectory, String> {
        let value = parse(text).map_err(|e| e.to_string())?;
        if value.get("bench").and_then(Value::as_str) != Some("gateway_trajectory") {
            return Err("not a gateway_trajectory document".into());
        }
        let runs = value
            .get("runs")
            .and_then(Value::as_array)
            .ok_or("missing runs array")?
            .iter()
            .map(|r| BenchRun::from_value(r).ok_or("malformed run record"))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Trajectory { runs })
    }

    /// The newest recorded run — what `--check` compares against.
    pub fn latest(&self) -> Option<&BenchRun> {
        self.runs.last()
    }
}

/// Compares `current` against `baseline` (the trajectory's newest run):
/// every case present in both must reach at least
/// [`REGRESSION_FLOOR`] × the recorded throughput. Returns the list of
/// violations, empty when the run is clean.
pub fn check_against(baseline: &BenchRun, current: &BenchRun) -> Vec<String> {
    let factor = if baseline.effort == current.effort {
        REGRESSION_FLOOR
    } else {
        REGRESSION_FLOOR / 2.0
    };
    let mut violations = Vec::new();
    for base in &baseline.rows {
        let Some(cur) = current.rows.iter().find(|r| r.case == base.case) else {
            violations.push(format!("case {} missing from current run", base.case));
            continue;
        };
        let floor = base.throughput_rps * factor;
        if cur.throughput_rps < floor {
            violations.push(format!(
                "{}: {:.0} req/s < {:.0} ({}× of recorded {:.0})",
                base.case, cur.throughput_rps, floor, factor, base.throughput_rps,
            ));
        }
    }
    violations
}

fn sim_backend(app: AppKind) -> Backend {
    Backend::Sim(
        ClusterConfig::default()
            .with_seed(42)
            .with_fixed_workers(vec![WORKERS; app.pipeline().modules.len()])
            .with_pard(pard_core::PardConfig::default().with_mc_draws(1_000)),
    )
}

fn live_backend(app: AppKind) -> Backend {
    Backend::Live(LiveConfig {
        time_scale: LIVE_SCALE,
        pard: pard_core::PardConfig::default().with_mc_draws(1_000),
        workers_per_module: vec![WORKERS; app.pipeline().modules.len()],
        headroom: 2.0,
    })
}

/// Boots a gateway on ephemeral loopback ports, runs `config` against
/// it, and shuts it down.
fn run_case(app: AppKind, backend: Backend, config: &LoadgenConfig) -> io::Result<LoadgenReport> {
    let engine = EngineBuilder::new(app.pipeline())
        .build(backend)
        .map_err(|e| io::Error::other(e.to_string()))?;
    let gateway = Gateway::start(
        engine,
        GatewayConfig {
            addr: "127.0.0.1:0".into(),
            metrics_addr: "127.0.0.1:0".into(),
            // The bench matrix runs with the online estimator on: its
            // fold cost sits on the snapshot-refresh path, so the
            // trajectory check guards the adaptive layer's overhead
            // too.
            adaptive: Some(crate::adaptive::AdaptiveConfig::default()),
            ..GatewayConfig::default()
        },
    )?;
    let report = loadgen::run(gateway.addr(), config);
    gateway.shutdown(pard_sim::SimDuration::from_secs(30));
    report
}

fn closed_config(app: AppKind, requests: usize, time_scale: f64) -> LoadgenConfig {
    LoadgenConfig {
        app: app.name().into(),
        connections: 8,
        mode: LoadMode::Closed {
            requests_per_connection: requests,
        },
        slo_ms: None,
        tight_fraction: 0.05,
        time_scale,
        ..LoadgenConfig::default()
    }
}

/// Runs the full matrix at `effort`, labelling the run `label`.
pub fn run_matrix(label: &str, effort: Effort) -> io::Result<BenchRun> {
    let (closed_requests, open_sim_rate, open_sim_secs, open_live_rate, open_live_secs) =
        match effort {
            Effort::Quick => (80, 400.0, 4, 150.0, 4),
            Effort::Full => (250, 1500.0, 10, 200.0, 10),
        };
    let mut rows = Vec::new();

    // Closed loop: 8 connections, one outstanding request each — the
    // end-to-end RTT figure (wire + admission + submit + dispatch).
    for (app, backend_name) in [
        (AppKind::Tm, "sim"),
        (AppKind::Da, "sim"),
        (AppKind::Tm, "live"),
        (AppKind::Da, "live"),
    ] {
        let (backend, scale) = match backend_name {
            "sim" => (sim_backend(app), 1.0),
            _ => (live_backend(app), LIVE_SCALE),
        };
        let case = format!("closed/{}/{}", app.name(), backend_name);
        eprintln!("bench: {case} …");
        let report = run_case(app, backend, &closed_config(app, closed_requests, scale))?;
        rows.push(BenchRow::from_report(&case, 8, &report));
    }

    // Open loop, sim backend, virtual pacing: the wire path at full
    // socket speed (single connection; the engine paces itself).
    {
        let case = "open/tm/sim";
        eprintln!("bench: {case} …");
        let app = AppKind::Tm;
        let config = LoadgenConfig {
            app: app.name().into(),
            connections: 1,
            mode: LoadMode::Open {
                trace: constant(open_sim_rate, open_sim_secs),
            },
            pace: Pace::Virtual,
            tight_fraction: 0.05,
            time_scale: 1.0,
            ..LoadgenConfig::default()
        };
        let report = run_case(app, sim_backend(app), &config)?;
        rows.push(BenchRow::from_report(case, 1, &report));
    }

    // Open loop, sim backend, virtual pacing split across a replay
    // group: three connections declare `replay_join` and the gateway
    // re-serializes their slices into global schedule order — the
    // multi-connection deterministic-replay path end to end.
    {
        let case = "replay/tm/sim";
        eprintln!("bench: {case} …");
        let app = AppKind::Tm;
        let config = LoadgenConfig {
            app: app.name().into(),
            connections: 3,
            mode: LoadMode::Open {
                trace: constant(open_sim_rate, open_sim_secs),
            },
            pace: Pace::Virtual,
            tight_fraction: 0.05,
            time_scale: 1.0,
            ..LoadgenConfig::default()
        };
        let report = run_case(app, sim_backend(app), &config)?;
        rows.push(BenchRow::from_report(case, 3, &report));
    }

    // Open loop at connection scale: thousands of sockets multiplexed
    // onto one epoll thread in the load generator, wall pacing — the
    // C10K row (the CI smoke pushes the count higher across separate
    // processes; in-process both sides share one fd budget).
    {
        let case = "mux/tm/sim";
        eprintln!("bench: {case} …");
        let connections = match effort {
            Effort::Quick => 2000,
            Effort::Full => 6000,
        };
        let app = AppKind::Tm;
        let config = LoadgenConfig {
            app: app.name().into(),
            connections,
            mode: LoadMode::Open {
                trace: constant(open_sim_rate, open_sim_secs),
            },
            pace: Pace::Wall,
            mux: true,
            tight_fraction: 0.05,
            time_scale: 1.0,
            ..LoadgenConfig::default()
        };
        let report = run_case(app, sim_backend(app), &config)?;
        rows.push(BenchRow::from_report(case, connections, &report));
    }

    // Open loop, live backend, wall pacing: trace replay fidelity on
    // the compressed wall clock.
    {
        let case = "open/tm/live";
        eprintln!("bench: {case} …");
        let app = AppKind::Tm;
        let config = LoadgenConfig {
            app: app.name().into(),
            connections: 4,
            mode: LoadMode::Open {
                trace: constant(open_live_rate, open_live_secs),
            },
            pace: Pace::Wall,
            tight_fraction: 0.05,
            time_scale: LIVE_SCALE,
            ..LoadgenConfig::default()
        };
        let report = run_case(app, live_backend(app), &config)?;
        rows.push(BenchRow::from_report(case, 4, &report));
    }

    Ok(BenchRun {
        label: label.to_string(),
        effort: effort.label(),
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(case: &str, rps: f64) -> BenchRow {
        BenchRow {
            case: case.into(),
            connections: 8,
            sent: 100,
            answered: 100,
            ok: 90,
            dropped_edge: 5,
            throughput_rps: rps,
            p50_ms: 1.0,
            p99_ms: 2.0,
            elapsed_s: 0.5,
        }
    }

    fn run(label: &str, rps: f64) -> BenchRun {
        BenchRun {
            label: label.into(),
            effort: "quick",
            rows: vec![row("closed/tm/sim", rps), row("open/tm/sim", rps * 2.0)],
        }
    }

    #[test]
    fn trajectory_round_trips_through_json() {
        let trajectory = Trajectory {
            runs: vec![run("before", 1000.0), run("after", 2500.0)],
        };
        let parsed = Trajectory::from_json(&trajectory.to_json()).expect("round trip");
        assert_eq!(parsed.runs.len(), 2);
        assert_eq!(parsed.latest().unwrap().label, "after");
        assert_eq!(parsed.runs[0].rows[0].case, "closed/tm/sim");
        assert_eq!(parsed.runs[0].rows[0].throughput_rps, 1000.0);
        assert!(Trajectory::from_json("{}").is_err());
        assert!(Trajectory::from_json("not json").is_err());
    }

    #[test]
    fn check_flags_gross_regressions_only() {
        let baseline = run("baseline", 1000.0);
        // 60% of baseline: above the 0.5× floor, clean.
        assert!(check_against(&baseline, &run("now", 600.0)).is_empty());
        // 40%: a gross regression on every case.
        let violations = check_against(&baseline, &run("now", 400.0));
        assert_eq!(violations.len(), 2);
        assert!(violations[0].contains("closed/tm/sim"), "{violations:?}");
        // A case missing from the current run is itself a violation.
        let mut partial = run("now", 1000.0);
        partial.rows.remove(1);
        let violations = check_against(&baseline, &partial);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("missing"), "{violations:?}");
        // Cross-effort comparisons (CI quick vs recorded full) halve
        // the floor: 40% of baseline passes, 20% still fails.
        let mut full_baseline = run("baseline", 1000.0);
        full_baseline.effort = "full";
        assert!(check_against(&full_baseline, &run("now", 400.0)).is_empty());
        assert_eq!(check_against(&full_baseline, &run("now", 200.0)).len(), 2);
    }

    #[test]
    fn rows_round_trip_and_reject_garbage() {
        let original = row("closed/da/live", 123.45);
        let parsed = BenchRow::from_value(&original.to_value()).expect("round trip");
        assert_eq!(parsed.case, original.case);
        assert_eq!(parsed.throughput_rps, original.throughput_rps);
        assert!(BenchRow::from_value(&Value::Null).is_none());
    }
}
