//! DAG execution on the live threaded engine: split fan-out, merge
//! join barriers, and sibling cancellation when a branch drops.

use pard_core::{PolicyFactory, PopCtx, PopOutcome, ReqMeta, WorkerPolicy};
use pard_metrics::{DropReason, Outcome};
use pard_pipeline::{ModuleSpec, PipelineSpec};
use pard_policies::NaivePolicy;
use pard_runtime::{LiveCluster, LiveConfig, SleepBackend};
use pard_sim::{SimDuration, SimTime};

const SCALE: f64 = 40.0; // 40 virtual seconds per wall second

/// The diamond of §5.1: 0 splits to {1, 2}, 3 merges them.
fn diamond() -> PipelineSpec {
    PipelineSpec {
        name: "diamond".into(),
        slo: SimDuration::from_millis(5_000),
        modules: vec![
            ModuleSpec {
                name: "a".into(),
                id: 0,
                pres: vec![],
                subs: vec![1, 2],
            },
            ModuleSpec {
                name: "b".into(),
                id: 1,
                pres: vec![0],
                subs: vec![3],
            },
            ModuleSpec {
                name: "c".into(),
                id: 2,
                pres: vec![0],
                subs: vec![3],
            },
            ModuleSpec {
                name: "d".into(),
                id: 3,
                pres: vec![1, 2],
                subs: vec![],
            },
        ],
    }
}

fn profiles() -> Vec<pard_profile::ModelProfile> {
    vec![
        pard_profile::ModelProfile::new("a", 10.0, 5.0, 0.9, 16),
        pard_profile::ModelProfile::new("b", 8.0, 4.0, 0.9, 16),
        // The c branch is deliberately ~4× slower than b, so the merge
        // barrier is always exercised: b's fragment arrives first and
        // must wait for c's.
        pard_profile::ModelProfile::new("c", 30.0, 15.0, 0.9, 16),
        pard_profile::ModelProfile::new("d", 6.0, 3.0, 0.9, 16),
    ]
}

fn start(policy: PolicyFactory) -> LiveCluster {
    let profs = profiles();
    let backend_profs = profs.clone();
    LiveCluster::start(
        diamond(),
        profs,
        policy,
        Box::new(move |m, _| Box::new(SleepBackend::new(backend_profs[m].clone(), SCALE))),
        LiveConfig::compressed(SCALE, 4, 1),
    )
}

fn naive_everywhere() -> PolicyFactory {
    Box::new(|_| Box::new(NaivePolicy::new()))
}

/// Refuses every request at admission — stands in for a PARD drop
/// firing on one DAG branch.
struct RefuseAll;

impl WorkerPolicy for RefuseAll {
    fn name(&self) -> &'static str {
        "refuse-all"
    }

    fn enqueue(&mut self, req: ReqMeta, _now: SimTime) -> Option<(ReqMeta, DropReason)> {
        Some((req, DropReason::PredictedViolation))
    }

    fn pop_next(&mut self, _ctx: &PopCtx) -> PopOutcome {
        PopOutcome::Empty
    }

    fn queue_len(&self) -> usize {
        0
    }

    fn drain_queue(&mut self) -> Vec<ReqMeta> {
        Vec::new()
    }
}

#[test]
fn split_fans_out_and_merge_waits_for_both_branches() {
    let cluster = start(naive_everywhere());
    let ids: Vec<u64> = (0..5).map(|_| cluster.submit()).collect();
    let log = cluster.finish(SimDuration::from_secs(20));
    assert_eq!(log.len(), ids.len());
    for record in log.records() {
        assert!(
            matches!(record.outcome, Outcome::Completed { .. }),
            "{record:?}"
        );
        // Every module executed exactly once — the split fragment per
        // branch, and a single merged execution at the sink.
        let mut visits = [0usize; 4];
        for stage in &record.stages {
            visits[stage.module] += 1;
        }
        assert_eq!(visits, [1, 1, 1, 1], "{record:?}");
        // The source ran first, the sink last.
        assert_eq!(record.stages.first().unwrap().module, 0);
        assert_eq!(record.stages.last().unwrap().module, 3);
        // The join barrier held: the merged fragment arrived at the
        // sink only after *both* branch executions ended.
        let end_of = |module: usize| {
            record
                .stages
                .iter()
                .find(|s| s.module == module)
                .unwrap()
                .exec_end
        };
        let sink_arrival = record
            .stages
            .iter()
            .find(|s| s.module == 3)
            .unwrap()
            .arrived;
        assert!(sink_arrival >= end_of(1), "{record:?}");
        assert!(sink_arrival >= end_of(2), "{record:?}");
    }
}

#[test]
fn branch_drop_cancels_siblings_and_reports_exactly_once() {
    // Module 1 (one branch of the split) refuses everything; module 2
    // would happily serve its fragment.
    let policy: PolicyFactory = Box::new(|module| {
        if module == 1 {
            Box::new(RefuseAll)
        } else {
            Box::new(NaivePolicy::new())
        }
    });
    let cluster = start(policy);
    let (tx, rx) = std::sync::mpsc::channel();
    cluster.set_completion_sink(tx);
    let id = cluster.submit();
    let log = cluster.finish(SimDuration::from_secs(20));

    // Exactly one terminal notification, and it is the branch drop.
    let completions: Vec<_> = rx.try_iter().collect();
    assert_eq!(completions.len(), 1, "{completions:?}");
    assert_eq!(completions[0].id, id);
    match completions[0].outcome {
        Outcome::Dropped { module, reason, .. } => {
            assert_eq!(module, 1);
            assert_eq!(reason, DropReason::PredictedViolation);
        }
        other => panic!("expected a drop, got {other:?}"),
    }

    // The sibling fragment on module 2 was cancelled before execution
    // and the sink never ran: only the source produced a stage.
    let record = &log.records()[id as usize];
    assert!(record.is_dropped(), "{record:?}");
    let visited: Vec<usize> = record.stages.iter().map(|s| s.module).collect();
    assert_eq!(visited, vec![0], "{record:?}");
}

#[test]
fn dropped_requests_resolve_promptly_not_at_drain_timeout() {
    // The cancel path must release the request the moment the branch
    // drops — a request wedged behind a never-filling merge barrier
    // would only "resolve" by hitting the drain ceiling.
    let policy: PolicyFactory = Box::new(|module| {
        if module == 2 {
            Box::new(RefuseAll)
        } else {
            Box::new(NaivePolicy::new())
        }
    });
    let cluster = start(policy);
    let (tx, rx) = std::sync::mpsc::channel();
    cluster.set_completion_sink(tx);
    let id = cluster.submit();
    let completion = rx
        .recv_timeout(std::time::Duration::from_secs(10))
        .expect("the drop must be notified without waiting for finish()");
    assert_eq!(completion.id, id);
    assert!(
        matches!(completion.outcome, Outcome::Dropped { module: 2, .. }),
        "{completion:?}"
    );
    let log = cluster.finish(SimDuration::from_secs(5));
    assert!(log.records()[id as usize].is_dropped());
}
