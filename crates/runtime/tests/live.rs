//! End-to-end tests of the live threaded engine (time-compressed).

use pard_core::{PardPolicy, PardPolicyConfig};
use pard_pipeline::PipelineSpec;
use pard_policies::NaivePolicy;
use pard_profile::ModelProfile;
use pard_runtime::{LiveCluster, LiveConfig, SleepBackend, SubmitOptions};
use pard_sim::{SimDuration, SimTime};

const SCALE: f64 = 40.0; // 40 virtual seconds per wall second

fn profiles() -> Vec<ModelProfile> {
    vec![
        ModelProfile::new("a", 10.0, 5.0, 0.9, 16),
        ModelProfile::new("b", 8.0, 4.0, 0.9, 16),
        ModelProfile::new("c", 6.0, 3.0, 0.9, 16),
    ]
}

fn spec(slo_ms: u64) -> PipelineSpec {
    PipelineSpec::chain("live", SimDuration::from_millis(slo_ms), &["a", "b", "c"])
}

fn start(slo_ms: u64, workers: usize, pard: bool) -> LiveCluster {
    let profs = profiles();
    let backend_profs = profs.clone();
    LiveCluster::start(
        spec(slo_ms),
        profs,
        if pard {
            Box::new(|_| Box::new(PardPolicy::new(PardPolicyConfig::pard())))
        } else {
            Box::new(|_| Box::new(NaivePolicy::new()))
        },
        Box::new(move |m, _| Box::new(SleepBackend::new(backend_profs[m].clone(), SCALE))),
        LiveConfig::compressed(SCALE, 3, workers),
    )
}

#[test]
fn light_load_serves_within_slo() {
    let cluster = start(400, 1, true);
    cluster.run_open_loop(30.0, SimDuration::from_secs(8), 7);
    let log = cluster.finish(SimDuration::from_secs(5));
    assert!(log.len() > 100, "submitted {}", log.len());
    let goodput = log.goodput_count() as f64 / log.len() as f64;
    assert!(goodput > 0.9, "goodput fraction {goodput}");
    // Requests traverse all three modules in order.
    let completed = log
        .records()
        .iter()
        .find(|r| r.is_goodput())
        .expect("at least one goodput request");
    let modules: Vec<usize> = completed.stages.iter().map(|s| s.module).collect();
    assert_eq!(modules, vec![0, 1, 2]);
}

#[test]
fn overload_drops_proactively_with_pard() {
    // SLO is tight and the offered rate exceeds one worker's capacity.
    let cluster = start(150, 1, true);
    cluster.run_open_loop(400.0, SimDuration::from_secs(6), 11);
    let log = cluster.finish(SimDuration::from_secs(4));
    assert!(log.len() > 500);
    assert!(
        log.drop_rate() > 0.1,
        "overload must drop, rate {}",
        log.drop_rate()
    );
    // Goodput requests really met the deadline.
    for r in log.records() {
        if r.is_goodput() {
            let latency = r.latency().expect("completed");
            assert!(latency <= SimDuration::from_millis(150));
        }
    }
}

#[test]
fn pard_beats_naive_under_live_overload() {
    let pard_cluster = start(200, 1, true);
    pard_cluster.run_open_loop(350.0, SimDuration::from_secs(6), 13);
    let pard_log = pard_cluster.finish(SimDuration::from_secs(4));

    let naive_cluster = start(200, 1, false);
    naive_cluster.run_open_loop(350.0, SimDuration::from_secs(6), 13);
    let naive_log = naive_cluster.finish(SimDuration::from_secs(4));

    let pard_frac = pard_log.goodput_count() as f64 / pard_log.len().max(1) as f64;
    let naive_frac = naive_log.goodput_count() as f64 / naive_log.len().max(1) as f64;
    assert!(
        pard_frac > naive_frac,
        "PARD {pard_frac:.3} should beat Naive {naive_frac:.3}"
    );
}

#[test]
fn stage_timestamps_are_ordered() {
    let cluster = start(400, 2, true);
    cluster.run_open_loop(60.0, SimDuration::from_secs(5), 17);
    let log = cluster.finish(SimDuration::from_secs(4));
    let mut stages = 0;
    for r in log.records() {
        let mut prev_end = SimTime::ZERO;
        for s in &r.stages {
            assert!(s.arrived <= s.batched);
            assert!(s.batched <= s.exec_start);
            assert!(s.exec_start < s.exec_end);
            assert!(s.arrived >= prev_end, "stage started before previous ended");
            prev_end = s.exec_end;
            stages += 1;
        }
    }
    assert!(stages > 200, "stages {stages}");
}

#[test]
fn submit_returns_monotonic_ids() {
    let cluster = start(400, 1, true);
    let a = cluster.submit();
    let b = cluster.submit();
    assert_eq!(b, a + 1);
    let log = cluster.finish(SimDuration::from_secs(3));
    assert_eq!(log.len(), 2);
}

#[test]
fn per_request_slo_overrides_pipeline_default() {
    let cluster = start(400, 1, true);
    // An SLO far tighter than the pipeline can serve: the request must
    // resolve as dropped or late, while a default-SLO request completes.
    let tight = cluster.submit_with(SubmitOptions::default().with_slo(SimDuration::from_millis(1)));
    let loose = cluster.submit();
    let log = cluster.finish(SimDuration::from_secs(5));
    let tight_rec = &log.records()[tight as usize];
    let loose_rec = &log.records()[loose as usize];
    assert_eq!(
        tight_rec.deadline,
        tight_rec.sent + SimDuration::from_millis(1)
    );
    assert!(tight_rec.is_dropped(), "tight SLO request must not count");
    assert!(loose_rec.is_goodput(), "default SLO request must complete");
}

#[test]
fn completion_sink_reports_every_request_with_its_tag() {
    let cluster = start(400, 1, true);
    let (tx, rx) = std::sync::mpsc::channel();
    cluster.set_completion_sink(tx);
    let mut expected = std::collections::HashMap::new();
    for tag in [7u64, 11, 13] {
        let id = cluster.submit_with(SubmitOptions::default().with_tag(tag));
        expected.insert(id, tag);
    }
    let mut seen = 0;
    while seen < expected.len() {
        let completion = rx
            .recv_timeout(std::time::Duration::from_secs(10))
            .expect("completion within the drain window");
        assert_eq!(expected[&completion.id], completion.tag);
        assert!(!matches!(
            completion.outcome,
            pard_metrics::Outcome::InFlight
        ));
        if completion.within_slo() {
            assert!(completion.latency().expect("completed") <= SimDuration::from_millis(400));
        }
        seen += 1;
    }
    let log = cluster.finish(SimDuration::from_secs(3));
    assert_eq!(log.len(), 3);
}

#[test]
fn edge_state_reflects_plan_and_queues() {
    let cluster = start(400, 2, true);
    let state = cluster.edge_state();
    assert_eq!(state.queue_depths.len(), 3);
    assert_eq!(state.workers, vec![2, 2, 2]);
    assert_eq!(state.batch_sizes.len(), 3);
    assert_eq!(state.exec_ms.len(), 3);
    assert_eq!(state.slo, SimDuration::from_millis(400));
    assert!(state.exec_ms.iter().all(|&d| d > 0.0));
    assert!(state.batch_sizes.iter().all(|&b| b >= 1));
    let _ = cluster.finish(SimDuration::from_secs(1));
}
