//! Wall-clock to virtual-time mapping.

use std::time::Instant;

use pard_sim::{SimDuration, SimTime};

/// A monotonic wall clock that reports [`SimTime`], optionally running
/// the simulated time faster than real time.
///
/// With `scale = s`, one wall-clock second advances the virtual clock by
/// `s` virtual seconds; backends divide their sleep times by `s`, so an
/// entire serving experiment compresses by `s×` without changing any
/// policy arithmetic. `scale = 1` is real time.
#[derive(Clone, Debug)]
pub struct WallClock {
    origin: Instant,
    scale: f64,
}

impl WallClock {
    /// Starts a clock at virtual time zero.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not positive.
    pub fn new(scale: f64) -> WallClock {
        assert!(scale > 0.0, "clock scale must be positive");
        WallClock {
            origin: Instant::now(),
            scale,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        SimTime::from_secs_f64(self.origin.elapsed().as_secs_f64() * self.scale)
    }

    /// The speed-up factor.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Wall-clock sleep that advances virtual time by `virtual_d`.
    pub fn sleep(&self, virtual_d: SimDuration) {
        let wall = virtual_d.as_secs_f64() / self.scale;
        if wall > 0.0 {
            std::thread::sleep(std::time::Duration::from_secs_f64(wall));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances_monotonically() {
        let clock = WallClock::new(1.0);
        let a = clock.now();
        std::thread::sleep(std::time::Duration::from_millis(5));
        let b = clock.now();
        assert!(b > a);
    }

    #[test]
    fn scale_compresses_time() {
        let clock = WallClock::new(50.0);
        std::thread::sleep(std::time::Duration::from_millis(10));
        // 10 ms wall at 50x is >= 500 ms virtual (scheduler slack only
        // adds more).
        assert!(clock.now() >= SimTime::from_millis(450));
    }

    #[test]
    fn sleep_advances_virtual_duration() {
        let clock = WallClock::new(20.0);
        let before = clock.now();
        clock.sleep(SimDuration::from_millis(100));
        let elapsed = clock.now().saturating_since(before);
        assert!(elapsed >= SimDuration::from_millis(90), "elapsed {elapsed}");
    }

    #[test]
    #[should_panic(expected = "scale")]
    fn rejects_zero_scale() {
        let _ = WallClock::new(0.0);
    }
}
