//! Live multi-threaded serving engine for PARD pipelines.
//!
//! The discrete-event simulator (`pard-cluster`) is the evaluation
//! substrate; this crate proves the same policy objects serve on real
//! threads: per-worker OS threads with condition-variable queues, a
//! controller thread doing periodic state synchronisation, wall-clock
//! time (optionally compressed via [`WallClock`]), and pluggable
//! [`InferenceBackend`]s — a sleep-based one following a
//! [`pard_profile::ModelProfile`], and a CPU mat-mul backend that can be
//! profiled offline exactly like a production model.

pub mod backend;
pub mod clock;
pub mod engine;

pub use backend::{CpuBackend, InferenceBackend, ScriptedSlowdownBackend, SleepBackend};
pub use clock::WallClock;
pub use engine::{BackendFactory, Completion, EdgeState, LiveCluster, LiveConfig, SubmitOptions};
