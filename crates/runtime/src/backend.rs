//! Inference backends for the live engine.
//!
//! The paper serves real DNNs through PyTorch; here a backend is
//! anything that can "execute a batch" for a duration consistent with a
//! [`ModelProfile`]. Two implementations:
//!
//! * [`SleepBackend`] — sleeps the profiled duration (scaled by the
//!   experiment clock). The default for live demos: latency-faithful and
//!   free.
//! * [`CpuBackend`] — burns real CPU on f32 matrix multiplications
//!   sized per batch item. Used with the offline profiler
//!   ([`pard_profile::profiler`]) exactly the way a deployment would
//!   profile a GPU model.

use pard_profile::{ModelProfile, Profileable};
use std::time::Instant;

/// Executes one batch, blocking for its duration.
pub trait InferenceBackend: Send {
    /// Runs a batch of `batch` requests to completion.
    fn execute(&mut self, batch: usize);

    /// The profile this backend claims to follow, if known a priori.
    fn profile(&self) -> Option<&ModelProfile> {
        None
    }
}

/// Latency-faithful backend: sleeps `d(B) / time_scale` wall time.
pub struct SleepBackend {
    profile: ModelProfile,
    time_scale: f64,
}

impl SleepBackend {
    /// Creates a backend following `profile` at the given clock scale.
    ///
    /// # Panics
    ///
    /// Panics if `time_scale` is not positive.
    pub fn new(profile: ModelProfile, time_scale: f64) -> SleepBackend {
        assert!(time_scale > 0.0, "time scale must be positive");
        SleepBackend {
            profile,
            time_scale,
        }
    }
}

impl InferenceBackend for SleepBackend {
    fn execute(&mut self, batch: usize) {
        let wall = self.profile.latency(batch).as_secs_f64() / self.time_scale;
        std::thread::sleep(std::time::Duration::from_secs_f64(wall));
    }

    fn profile(&self) -> Option<&ModelProfile> {
        Some(&self.profile)
    }
}

/// Compute backend: per batch item, one `dim × dim` f32 mat-mul pass.
///
/// The work is real (the optimiser cannot elide it — the accumulator is
/// folded into an observable checksum), so profiling it measures genuine
/// execution latency.
pub struct CpuBackend {
    dim: usize,
    a: Vec<f32>,
    b: Vec<f32>,
    checksum: f32,
}

impl CpuBackend {
    /// Creates a backend multiplying `dim × dim` matrices per item.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is zero.
    pub fn new(dim: usize) -> CpuBackend {
        assert!(dim > 0, "matrix dimension must be positive");
        let a: Vec<f32> = (0..dim * dim).map(|i| (i % 13) as f32 * 0.25).collect();
        let b: Vec<f32> = (0..dim * dim).map(|i| (i % 7) as f32 * 0.5).collect();
        CpuBackend {
            dim,
            a,
            b,
            checksum: 0.0,
        }
    }

    /// Observable accumulator (prevents dead-code elimination).
    pub fn checksum(&self) -> f32 {
        self.checksum
    }

    fn matmul_once(&mut self) {
        let n = self.dim;
        let mut acc = 0.0f32;
        for i in 0..n {
            for j in 0..n {
                let mut sum = 0.0f32;
                for k in 0..n {
                    sum += self.a[i * n + k] * self.b[k * n + j];
                }
                acc += sum;
            }
        }
        self.checksum += acc;
    }
}

impl InferenceBackend for CpuBackend {
    fn execute(&mut self, batch: usize) {
        for _ in 0..batch.max(1) {
            self.matmul_once();
        }
    }
}

impl Profileable for CpuBackend {
    fn run_batch(&mut self, batch: usize) -> f64 {
        let t0 = Instant::now();
        self.execute(batch);
        t0.elapsed().as_secs_f64() * 1e3
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pard_profile::MeasuredProfile;

    #[test]
    fn sleep_backend_respects_scale() {
        let profile = ModelProfile::new("m", 50.0, 10.0, 0.9, 8);
        let mut fast = SleepBackend::new(profile.clone(), 100.0);
        let t0 = Instant::now();
        fast.execute(4);
        // 50+10*4^0.9 ≈ 85 ms virtual → ~0.85 ms wall at 100×.
        assert!(t0.elapsed().as_millis() < 50);
        assert_eq!(fast.profile().unwrap().name, "m");
    }

    #[test]
    fn cpu_backend_scales_with_batch() {
        let mut backend = CpuBackend::new(64);
        let t1 = backend.run_batch(1);
        let t8 = backend.run_batch(8);
        assert!(t8 > 3.0 * t1, "batch 8 ({t8} ms) vs 1 ({t1} ms)");
        assert!(backend.checksum() != 0.0);
    }

    /// A backend whose "timings" follow an exact per-item law plus a
    /// small deterministic wobble — what a `CpuBackend` measurement
    /// looks like on an unloaded machine, with the machine taken out
    /// of the test.
    struct ScriptedBackend {
        base_ms: f64,
        per_item_ms: f64,
        calls: u32,
    }

    impl Profileable for ScriptedBackend {
        fn run_batch(&mut self, batch: usize) -> f64 {
            // ±2% deterministic jitter so the fit sees "noisy"
            // repetitions, reproducibly.
            self.calls += 1;
            let wobble = 1.0 + 0.02 * f64::from(self.calls % 3) - 0.02;
            (self.base_ms + self.per_item_ms * batch as f64) * wobble
        }
    }

    #[test]
    fn profiler_fit_recovers_linear_work_from_injected_timings() {
        // The end-to-end profiling pipeline (collect → robust stats →
        // gamma grid search → closed-form base/slope), driven by
        // deterministic timings: per-item-linear work must fit with
        // gamma near 1 and predict the largest batch closely. This is
        // the load-independent form of the wall-clock test below,
        // which stays `#[ignore]`d for manual runs — on a busy machine
        // real mat-mul timings can dip the fitted gamma under its
        // bound (see CHANGES.md PR 4).
        let mut backend = ScriptedBackend {
            base_ms: 0.4,
            per_item_ms: 2.5,
            calls: 0,
        };
        let measured = MeasuredProfile::collect(&mut backend, &[1, 2, 4, 8], 3);
        let fitted = measured.fit("scripted-linear", 8);
        assert!(fitted.gamma > 0.9, "gamma {}", fitted.gamma);
        let last = measured.points.last().unwrap();
        let rel = (fitted.latency_ms(last.batch) - last.mean_ms).abs() / last.mean_ms;
        assert!(rel < 0.05, "batch {}: rel {rel}", last.batch);
        // And the measured points really were wobbled, not constant.
        assert!(measured.points.iter().any(|p| p.std_ms > 0.0));
    }

    #[test]
    #[ignore = "wall-clock mat-mul fit; run manually on a quiet machine (gamma dips under load)"]
    fn cpu_backend_is_profileable_end_to_end() {
        // Matrices large enough that per-item work (~ms) dominates timer
        // resolution and scheduler noise from concurrently running tests.
        let mut backend = CpuBackend::new(128);
        let measured = MeasuredProfile::collect(&mut backend, &[1, 2, 4, 8], 3);
        let fitted = measured.fit("cpu-128", 8);
        // Linear work: the fitted exponent should be near 1 even under
        // load; 0.7 leaves slack for noisy small-batch points.
        assert!(fitted.gamma > 0.7, "gamma {}", fitted.gamma);
        // The fit predicts the largest measured point reasonably.
        let last = measured.points.last().unwrap();
        let rel = (fitted.latency_ms(last.batch) - last.mean_ms).abs() / last.mean_ms;
        assert!(rel < 0.5, "batch {}: rel {rel}", last.batch);
    }
}
