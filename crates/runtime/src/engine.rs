//! The live threaded serving engine.
//!
//! One OS thread per worker, a controller thread for state
//! synchronisation, and the same [`pard_core::WorkerPolicy`] objects the simulator
//! drives — so a policy validated in the DES serves unchanged on real
//! threads with a real (or sleep-based) backend.
//!
//! Differences from the DES (documented, deliberate):
//!
//! * Batches form when the worker becomes idle rather than overlapping
//!   with the previous execution, so batch wait `W` is near zero and
//!   waiting shows up as queueing delay `Q`. Policy arithmetic is
//!   unchanged; the DES remains the reference for Fig. 3b-style wait
//!   dynamics.
//!
//! Any valid [`PipelineSpec`] is served, DAGs included (§5.1): a request
//! finishing a fan-out module forwards one *fragment* per successor, a
//! merge module holds a join barrier that releases only once every
//! predecessor fragment has delivered, and a drop on any branch cancels
//! the sibling fragments — the request resolves exactly once, as
//! dropped, and cancelled fragments are discarded at batch formation
//! before they burn backend execution.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::Sender;
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::{Condvar, Mutex};

use pard_core::window::{LinearWeightedWindow, RateMeter};
use pard_core::{
    ModuleState, PardConfig, PipelineView, PolicyFactory, PopCtx, PopOutcome, ReqMeta,
    StatePlanner, SyncUpdate,
};
use pard_metrics::{DropReason, Outcome, RequestLog, RequestRecord, Reservoir, StageRecord};
use pard_obs::{FlightRecorder, ObsEvent, ObsKind};
use pard_pipeline::{graph, PipelineSpec};
use pard_profile::{plan_batches, ModelProfile};
use pard_sim::{DetRng, SimDuration, SimTime};

use crate::backend::InferenceBackend;
use crate::clock::WallClock;

/// Builds one backend per worker of a module. Called sequentially at
/// startup — module-major, worker-minor — with the module index and
/// the engine's own clock (so wrappers like
/// [`crate::ScriptedSlowdownBackend`] share the exact virtual-time
/// origin the engine runs on).
pub type BackendFactory = Box<dyn Fn(usize, &WallClock) -> Box<dyn InferenceBackend> + Send + Sync>;

/// Configuration of the live engine.
pub struct LiveConfig {
    /// Virtual seconds per wall second (experiment compression).
    pub time_scale: f64,
    /// PARD algorithm knobs.
    pub pard: PardConfig,
    /// Workers per module.
    pub workers_per_module: Vec<usize>,
    /// Batch-planning headroom.
    pub headroom: f64,
}

impl LiveConfig {
    /// A configuration suitable for fast tests/demos: `scale`× time
    /// compression, light Monte-Carlo load, `workers` per module.
    pub fn compressed(scale: f64, modules: usize, workers: usize) -> LiveConfig {
        LiveConfig {
            time_scale: scale,
            pard: PardConfig::default().with_mc_draws(500),
            workers_per_module: vec![workers; modules],
            headroom: 2.0,
        }
    }
}

struct WorkerShared {
    policy: Mutex<Box<dyn pard_core::WorkerPolicy>>,
    cv: Condvar,
}

struct ModuleShared {
    workers: Vec<WorkerShared>,
    input_meter: Mutex<RateMeter>,
    q_window: Mutex<LinearWeightedWindow>,
    wcl_window: Mutex<LinearWeightedWindow>,
    wait_reservoir: Mutex<Reservoir>,
}

struct LiveRecord {
    sent: SimTime,
    deadline: SimTime,
    tag: u64,
    stages: Vec<StageRecord>,
    outcome: Outcome,
    /// Per-module join-barrier state: count of predecessor fragments
    /// delivered and the latest delivery time. The merge module
    /// enqueues only when the count reaches its `pres` length, stamped
    /// at the *latest* branch end — worker threads may deliver out of
    /// execution order, and the join logically completes when the
    /// slowest branch does. Empty for chain pipelines (no merge nodes,
    /// never consulted).
    merge_arrivals: Vec<(usize, SimTime)>,
}

/// Per-request submission options (see [`LiveCluster::submit_with`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct SubmitOptions {
    /// End-to-end latency budget; the pipeline's SLO when `None`.
    pub slo: Option<SimDuration>,
    /// Opaque caller tag echoed back verbatim in the [`Completion`],
    /// for submitters that want to attach their own correlation key
    /// (the gateway routes by `id` and leaves this at 0).
    pub tag: u64,
}

impl SubmitOptions {
    /// Overrides the per-request SLO.
    pub fn with_slo(mut self, slo: SimDuration) -> SubmitOptions {
        self.slo = Some(slo);
        self
    }

    /// Sets the caller tag.
    pub fn with_tag(mut self, tag: u64) -> SubmitOptions {
        self.tag = tag;
        self
    }
}

/// Terminal-state notification delivered to the completion sink the
/// moment a request resolves (completes or is dropped), without waiting
/// for [`LiveCluster::finish`].
#[derive(Clone, Copy, Debug)]
pub struct Completion {
    /// The id [`LiveCluster::submit_with`] returned.
    pub id: u64,
    /// The caller tag from [`SubmitOptions`].
    pub tag: u64,
    /// Client send time.
    pub sent: SimTime,
    /// Absolute deadline.
    pub deadline: SimTime,
    /// Terminal outcome (never [`Outcome::InFlight`]).
    pub outcome: Outcome,
}

impl Completion {
    /// Whether the request completed within its SLO.
    pub fn within_slo(&self) -> bool {
        matches!(self.outcome, Outcome::Completed { finished } if finished <= self.deadline)
    }

    /// End-to-end latency for completed requests.
    pub fn latency(&self) -> Option<SimDuration> {
        match self.outcome {
            Outcome::Completed { finished } => Some(finished.saturating_since(self.sent)),
            _ => None,
        }
    }
}

/// Point-in-time view of the serving state a gateway needs for edge
/// admission: per-module queue depths plus the static plan.
#[derive(Clone, Debug)]
pub struct EdgeState {
    /// Queued requests per module (summed over workers).
    pub queue_depths: Vec<usize>,
    /// Worker threads per module (queued batches drain this many at a
    /// time).
    pub workers: Vec<usize>,
    /// Planned batch size per module.
    pub batch_sizes: Vec<usize>,
    /// Profiled execution duration per module at the planned batch, ms.
    pub exec_ms: Vec<f64>,
    /// The pipeline's default SLO.
    pub slo: SimDuration,
}

struct Shared {
    spec: PipelineSpec,
    /// Whether the spec has merge nodes; chains skip the per-request
    /// join-barrier allocation entirely.
    has_merges: bool,
    batch_sizes: Vec<usize>,
    exec_ms: Vec<f64>,
    per_worker_tput: Vec<f64>,
    clock: WallClock,
    pard: PardConfig,
    shutdown: AtomicBool,
    modules: Vec<ModuleShared>,
    records: Mutex<Vec<LiveRecord>>,
    completion_tx: Mutex<Option<Sender<Completion>>>,
    /// Flight recorder for lifecycle events, always on: recording is a
    /// ticket `fetch_add` plus a handful of atomic stores, so it stays
    /// off every lock and adds nothing observable to the serving path.
    recorder: Arc<FlightRecorder>,
}

impl Shared {
    /// Index of the least-loaded worker of `module`.
    fn pick_worker(&self, module: usize) -> usize {
        let mut best = 0;
        let mut best_len = usize::MAX;
        for (i, w) in self.modules[module].workers.iter().enumerate() {
            let len = w.policy.lock().queue_len();
            if len < best_len {
                best_len = len;
                best = i;
            }
        }
        best
    }

    /// Enqueues `meta` at `module`, recording admission-control drops.
    fn enqueue(&self, module: usize, meta: ReqMeta, now: SimTime) {
        self.modules[module].input_meter.lock().record(now);
        let widx = self.pick_worker(module);
        let worker = &self.modules[module].workers[widx];
        let refused = worker.policy.lock().enqueue(meta, now);
        match refused {
            Some((req, reason)) => self.mark_dropped(req.id, module, now, reason),
            None => {
                worker.cv.notify_one();
            }
        }
    }

    /// Forwards a request that finished `module` to every successor
    /// fragment. At a merge node the fragment parks in the join barrier
    /// until the last predecessor delivers; only that delivery enqueues.
    fn forward(&self, module: usize, meta: &ReqMeta, end: SimTime) {
        for &s in &self.spec.modules[module].subs {
            if let Some(joined) = self.deliver(meta.id, s, end) {
                let fragment = ReqMeta {
                    arrived: joined,
                    ..*meta
                };
                self.enqueue(s, fragment, joined);
            }
        }
    }

    /// Registers one predecessor delivery of request `id` at `module`
    /// ending at `end`; returns the join time when the barrier released
    /// (immediately, outside merge nodes). The records lock serialises
    /// racing sibling branches, so exactly one delivery sees the
    /// barrier fill — and the join is stamped at the *latest* branch
    /// end, not the releasing thread's own (threads may deliver out of
    /// execution order).
    fn deliver(&self, id: u64, module: usize, end: SimTime) -> Option<SimTime> {
        let required = self.spec.modules[module].pres.len();
        if required <= 1 {
            return Some(end);
        }
        let joined = {
            let mut records = self.records.lock();
            let (arrivals, latest) = &mut records[id as usize].merge_arrivals[module];
            *arrivals += 1;
            *latest = (*latest).max(end);
            (*arrivals == required).then_some(*latest)
        };
        if let Some(t) = joined {
            self.recorder.record(&ObsEvent {
                t_us: t.as_micros(),
                req: id,
                kind: ObsKind::MergeRelease {
                    module: module as u16,
                },
            });
        }
        joined
    }

    /// Discards batch entries whose request already resolved — the
    /// sibling fragments of a dropped DAG branch. They are cancelled
    /// here, at batch formation, before any backend execution is spent
    /// on them; the drop itself was already reported exactly once.
    fn cancel_resolved(&self, batch: &mut Vec<(ReqMeta, SimTime)>) {
        let records = self.records.lock();
        batch.retain(|(meta, _)| matches!(records[meta.id as usize].outcome, Outcome::InFlight));
    }

    fn mark_dropped(&self, id: u64, module: usize, at: SimTime, reason: DropReason) {
        let completion = {
            let mut records = self.records.lock();
            let record = &mut records[id as usize];
            if matches!(record.outcome, Outcome::InFlight) {
                record.outcome = Outcome::Dropped { module, at, reason };
                Some(Completion {
                    id,
                    tag: record.tag,
                    sent: record.sent,
                    deadline: record.deadline,
                    outcome: record.outcome,
                })
            } else {
                None
            }
        };
        if let Some(completion) = completion {
            self.recorder.record(&ObsEvent {
                t_us: at.as_micros(),
                req: id,
                kind: ObsKind::Dropped {
                    module: module as u16,
                    reason,
                },
            });
            self.notify(completion);
        }
    }

    /// Delivers a terminal-state notification, dropping the sink if the
    /// receiver has gone away.
    fn notify(&self, completion: Completion) {
        let mut tx = self.completion_tx.lock();
        if let Some(sender) = tx.as_ref() {
            if sender.send(completion).is_err() {
                *tx = None;
            }
        }
    }
}

/// A running live cluster.
pub struct LiveCluster {
    shared: Arc<Shared>,
    // Behind a Mutex so `drain` can join through `&self` — the unified
    // engine API hands the cluster around as a shared trait object.
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl LiveCluster {
    /// Starts worker and controller threads for `spec` — any valid
    /// pipeline shape, chain or DAG.
    ///
    /// # Panics
    ///
    /// Panics if the spec is invalid or if worker counts do not match
    /// the module count.
    pub fn start(
        spec: PipelineSpec,
        profiles: Vec<ModelProfile>,
        policy_factory: PolicyFactory,
        backend_factory: BackendFactory,
        config: LiveConfig,
    ) -> LiveCluster {
        spec.validate().expect("invalid pipeline spec");
        assert_eq!(config.workers_per_module.len(), spec.modules.len());
        config.pard.validate();
        let plan = plan_batches(&profiles, spec.slo, config.headroom);
        let exec_ms: Vec<f64> = profiles
            .iter()
            .zip(&plan.batch_sizes)
            .map(|(p, &b)| p.latency_ms(b))
            .collect();
        let modules: Vec<ModuleShared> = (0..spec.modules.len())
            .map(|m| ModuleShared {
                workers: (0..config.workers_per_module[m])
                    .map(|_| WorkerShared {
                        policy: Mutex::new(policy_factory(m)),
                        cv: Condvar::new(),
                    })
                    .collect(),
                input_meter: Mutex::new(RateMeter::new(config.pard.window)),
                q_window: Mutex::new(LinearWeightedWindow::new(config.pard.window)),
                wcl_window: Mutex::new(LinearWeightedWindow::new(config.pard.window)),
                wait_reservoir: Mutex::new(Reservoir::new(
                    config.pard.reservoir_capacity,
                    0x11ee + m as u64,
                )),
            })
            .collect();
        let shared = Arc::new(Shared {
            has_merges: !graph::merge_nodes(&spec).is_empty(),
            batch_sizes: plan.batch_sizes.clone(),
            exec_ms,
            per_worker_tput: plan.worker_throughput.clone(),
            clock: WallClock::new(config.time_scale),
            pard: config.pard,
            shutdown: AtomicBool::new(false),
            modules,
            records: Mutex::new(Vec::new()),
            completion_tx: Mutex::new(None),
            recorder: Arc::new(FlightRecorder::new()),
            spec,
        });

        let mut handles = Vec::new();
        for m in 0..shared.spec.modules.len() {
            for w in 0..config.workers_per_module[m] {
                let shared = Arc::clone(&shared);
                let backend = backend_factory(m, &shared.clock);
                handles.push(std::thread::spawn(move || {
                    worker_loop(shared, m, w, backend);
                }));
            }
        }
        {
            let shared = Arc::clone(&shared);
            handles.push(std::thread::spawn(move || controller_loop(shared)));
        }
        LiveCluster {
            shared,
            handles: Mutex::new(handles),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.shared.clock.now()
    }

    /// Submits one request under the pipeline's default SLO; returns its
    /// id.
    pub fn submit(&self) -> u64 {
        self.submit_with(SubmitOptions::default())
    }

    /// Submits one request with per-request options (SLO override and a
    /// caller tag for completion routing); returns its id.
    pub fn submit_with(&self, options: SubmitOptions) -> u64 {
        let now = self.shared.clock.now();
        let deadline = now + options.slo.unwrap_or(self.shared.spec.slo);
        let merge_arrivals = if self.shared.has_merges {
            vec![(0, SimTime::ZERO); self.shared.spec.modules.len()]
        } else {
            Vec::new()
        };
        let id = {
            let mut records = self.shared.records.lock();
            records.push(LiveRecord {
                sent: now,
                deadline,
                tag: options.tag,
                stages: Vec::new(),
                outcome: Outcome::InFlight,
                merge_arrivals,
            });
            (records.len() - 1) as u64
        };
        let meta = ReqMeta {
            id,
            sent: now,
            deadline,
            arrived: now,
        };
        self.shared.enqueue(self.shared.spec.source(), meta, now);
        id
    }

    /// Registers a channel that receives a [`Completion`] the moment any
    /// request resolves. Replaces a previously registered sink.
    pub fn set_completion_sink(&self, sender: Sender<Completion>) {
        *self.shared.completion_tx.lock() = Some(sender);
    }

    /// The pipeline specification being served.
    pub fn spec(&self) -> &PipelineSpec {
        &self.shared.spec
    }

    /// The cluster's flight recorder (always recording).
    pub fn recorder(&self) -> Arc<FlightRecorder> {
        Arc::clone(&self.shared.recorder)
    }

    /// Snapshot of the state edge admission control needs: per-module
    /// queue depths and the static batch plan.
    pub fn edge_state(&self) -> EdgeState {
        let queue_depths = (0..self.shared.spec.modules.len())
            .map(|m| {
                self.shared.modules[m]
                    .workers
                    .iter()
                    .map(|w| w.policy.lock().queue_len())
                    .sum()
            })
            .collect();
        EdgeState {
            queue_depths,
            workers: self
                .shared
                .modules
                .iter()
                .map(|m| m.workers.len())
                .collect(),
            batch_sizes: self.shared.batch_sizes.clone(),
            exec_ms: self.shared.exec_ms.clone(),
            slo: self.shared.spec.slo,
        }
    }

    /// Submits a Poisson stream of `rate` requests per *virtual* second
    /// for `duration` of virtual time (blocking the calling thread).
    ///
    /// Arrival instants are pre-drawn on the virtual clock; each wakeup
    /// submits everything that has come due, so high rates are honoured
    /// even when they exceed the OS sleep granularity.
    pub fn run_open_loop(&self, rate: f64, duration: SimDuration, seed: u64) {
        assert!(rate > 0.0, "rate must be positive");
        let mut rng = DetRng::new(seed);
        let start = self.shared.clock.now();
        let end = start + duration;
        let mut next = start + SimDuration::from_secs_f64(rng.exp(1.0 / rate));
        loop {
            let now = self.shared.clock.now();
            if now >= end {
                break;
            }
            while next <= now && next < end {
                self.submit();
                next += SimDuration::from_secs_f64(rng.exp(1.0 / rate));
            }
            if next > now {
                self.shared.clock.sleep(next.saturating_since(now));
            }
        }
    }

    /// Waits for in-flight requests to resolve (bounded by
    /// `drain_virtual`), stops all threads, and returns the log.
    pub fn finish(self, drain_virtual: SimDuration) -> RequestLog {
        self.drain(drain_virtual)
    }

    /// [`LiveCluster::finish`] through a shared reference, for callers
    /// that hold the cluster behind a trait object. Idempotent: the
    /// first call stops the engine and takes the log; later calls
    /// return an empty log.
    pub fn drain(&self, drain_virtual: SimDuration) -> RequestLog {
        let deadline = self.shared.clock.now() + drain_virtual;
        loop {
            let pending = {
                let records = self.shared.records.lock();
                records
                    .iter()
                    .any(|r| matches!(r.outcome, Outcome::InFlight))
            };
            if !pending || self.shared.clock.now() >= deadline {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        self.shared.shutdown.store(true, Ordering::SeqCst);
        for module in &self.shared.modules {
            for worker in &module.workers {
                worker.cv.notify_all();
            }
        }
        let handles = std::mem::take(&mut *self.handles.lock());
        for handle in handles {
            let _ = handle.join();
        }
        // Completion consumers unblock once the engine is down.
        *self.shared.completion_tx.lock() = None;
        let records = std::mem::take(&mut *self.shared.records.lock());
        let mut log = RequestLog::new();
        for (id, r) in records.into_iter().enumerate() {
            log.push(RequestRecord {
                id: id as u64,
                sent: r.sent,
                deadline: r.deadline,
                stages: r.stages,
                outcome: r.outcome,
            });
        }
        log
    }
}

fn worker_loop(shared: Arc<Shared>, m: usize, w: usize, mut backend: Box<dyn InferenceBackend>) {
    let is_sink = shared.spec.modules[m].subs.is_empty();
    loop {
        let mut drops: Vec<(ReqMeta, DropReason)> = Vec::new();
        let mut batch: Vec<(ReqMeta, SimTime)> = Vec::new();
        {
            let worker = &shared.modules[m].workers[w];
            let mut policy = worker.policy.lock();
            while policy.queue_len() == 0 {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                worker
                    .cv
                    .wait_for(&mut policy, std::time::Duration::from_millis(5));
            }
            let now = shared.clock.now();
            let b = shared.batch_sizes[m];
            let ctx = PopCtx {
                now,
                expected_exec_start: now,
                exec_duration: SimDuration::from_millis_f64(shared.exec_ms[m]),
                batch_size: b,
            };
            drops.extend(policy.on_batch_open(&ctx));
            while batch.len() < b {
                match policy.pop_next(&ctx) {
                    PopOutcome::Admit(meta) => batch.push((meta, now)),
                    PopOutcome::Drop(meta, reason) => drops.push((meta, reason)),
                    PopOutcome::Empty => break,
                }
            }
        }
        let now = shared.clock.now();
        for (meta, reason) in drops {
            shared.mark_dropped(meta.id, m, now, reason);
        }
        // Cancelled sibling fragments (their request was dropped on
        // another DAG branch) are discarded before execution. Only
        // pipelines with parallel branches can have them: a chain
        // request has one fragment, which cannot be resolved while
        // queued — so chains skip the records lock entirely. (Any
        // valid split reconverges by the single sink, so `has_merges`
        // is exactly "has parallel branches".)
        if shared.has_merges {
            shared.cancel_resolved(&mut batch);
        }
        if batch.is_empty() {
            continue;
        }
        let t_e = shared.clock.now();
        backend.execute(batch.len());
        let end = shared.clock.now();
        let gpu_share = end.saturating_since(t_e) / batch.len() as u64;
        for (meta, t_b) in &batch {
            let stage = StageRecord {
                module: m,
                worker: w,
                arrived: meta.arrived,
                batched: *t_b,
                exec_start: t_e,
                exec_end: end,
                batch_size: batch.len(),
                gpu_share,
            };
            {
                let module = &shared.modules[m];
                module
                    .q_window
                    .lock()
                    .push(end, t_b.saturating_since(meta.arrived).as_millis_f64());
                module
                    .wait_reservoir
                    .lock()
                    .record(t_e.saturating_since(*t_b).as_millis_f64());
                module
                    .wcl_window
                    .lock()
                    .push(end, end.saturating_since(meta.arrived).as_millis_f64());
            }
            let mut records = shared.records.lock();
            let record = &mut records[meta.id as usize];
            record.stages.push(stage);
            // A sibling branch may have dropped the request while this
            // fragment was executing; the stage is still recorded, but
            // the request neither completes nor forwards.
            let active = matches!(record.outcome, Outcome::InFlight);
            let mut completion = None;
            if active && is_sink {
                record.outcome = Outcome::Completed { finished: end };
                completion = Some(Completion {
                    id: meta.id,
                    tag: record.tag,
                    sent: record.sent,
                    deadline: record.deadline,
                    outcome: record.outcome,
                });
            }
            drop(records);
            shared.recorder.record(&ObsEvent {
                t_us: end.as_micros(),
                req: meta.id,
                kind: ObsKind::Stage {
                    module: m as u16,
                    worker: w as u16,
                    batch: batch.len() as u16,
                    arrived_us: meta.arrived.as_micros(),
                    batched_us: t_b.as_micros(),
                    exec_start_us: t_e.as_micros(),
                    exec_end_us: end.as_micros(),
                },
            });
            if let Some(completion) = completion {
                shared.recorder.record(&ObsEvent {
                    t_us: end.as_micros(),
                    req: meta.id,
                    kind: ObsKind::Completed {
                        finished_us: end.as_micros(),
                        deadline_us: completion.deadline.as_micros(),
                    },
                });
                shared.notify(completion);
            }
            if active && !is_sink {
                shared.forward(m, meta, end);
            }
        }
    }
}

fn controller_loop(shared: Arc<Shared>) {
    let n = shared.spec.modules.len();
    let mut planners: Vec<StatePlanner> = (0..n)
        .map(|k| {
            StatePlanner::new(
                k,
                graph::downstream_paths(&shared.spec, k),
                shared.pard.lambda,
                shared.pard.mc_draws,
                shared.pard.rate_history_len,
                DetRng::new(0x900d + k as u64),
            )
        })
        .collect();
    let mut published: Vec<ModuleState> = (0..n).map(ModuleState::empty).collect();
    while !shared.shutdown.load(Ordering::SeqCst) {
        shared.clock.sleep(shared.pard.sync_period);
        let now = shared.clock.now();
        let fresh: Vec<ModuleState> = (0..n)
            .map(|k| {
                let module = &shared.modules[k];
                let input = module.input_meter.lock().rate(now);
                let workers = module.workers.len();
                ModuleState {
                    module: k,
                    avg_queueing_ms: module.q_window.lock().mean(now).unwrap_or(0.0),
                    batch_size: shared.batch_sizes[k],
                    exec_ms: shared.exec_ms[k],
                    throughput: workers as f64 * shared.per_worker_tput[k],
                    input_rate: input,
                    drop_rate: 0.0,
                    worst_case_ms: module
                        .wcl_window
                        .lock()
                        .max(now)
                        .unwrap_or(shared.exec_ms[k]),
                    wait_sample_ms: module
                        .wait_reservoir
                        .lock()
                        .samples()
                        .iter()
                        .take(shared.pard.wait_digest_len)
                        .map(|&x| x as f32)
                        .collect(),
                }
            })
            .collect();
        for k in 0..n {
            let view_modules: Vec<ModuleState> = (0..n)
                .map(|i| {
                    if i == k {
                        fresh[i].clone()
                    } else {
                        published[i].clone()
                    }
                })
                .collect();
            let view = PipelineView {
                taken_at: now,
                modules: view_modules,
            };
            let epsilon = planners[k].observe_input_rate(fresh[k].input_rate);
            let sub = planners[k].estimate(&view);
            let update = SyncUpdate {
                module: k,
                sub,
                load_factor: fresh[k].load_factor(),
                epsilon,
                wcl_cum_budget: StatePlanner::wcl_cumulative_budgets(&view, shared.spec.slo)[k],
                input_rate: fresh[k].input_rate,
                view,
            };
            for worker in &shared.modules[k].workers {
                worker.policy.lock().on_sync(&update);
            }
        }
        published = fresh;
    }
}
