//! Event-driven simulation of the RAG workflow with pluggable dropping.

use std::collections::VecDeque;

use pard_core::window::LinearWeightedWindow;
use pard_sim::{DetRng, EventQueue, SimDuration, SimTime, Simulation, World};

use crate::stages::{LlmProfile, RetrieveProfile, SearchProfile};
use crate::workload::RagWorkload;

/// The dropping policy under test (Fig. 15a).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RagPolicy {
    /// Drop only after the TTFT SLO is already violated.
    Reactive,
    /// PARD-style projection with recent-average stage estimates.
    Proactive,
    /// Proactive plus oracle knowledge of rewrite output lengths.
    Predict,
}

impl RagPolicy {
    /// All policies in the paper's order.
    pub const ALL: [RagPolicy; 3] = [
        RagPolicy::Predict,
        RagPolicy::Reactive,
        RagPolicy::Proactive,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            RagPolicy::Reactive => "reactive",
            RagPolicy::Proactive => "proactive",
            RagPolicy::Predict => "predict",
        }
    }
}

/// Configuration of one RAG run.
#[derive(Clone, Debug)]
pub struct RagConfig {
    /// Dropping policy.
    pub policy: RagPolicy,
    /// Time-to-first-token SLO (paper: 5 s).
    pub slo: SimDuration,
    /// Rewrite-stage LLM.
    pub rewrite: LlmProfile,
    /// Generate-stage LLM.
    pub generate: LlmProfile,
    /// Retrieval stage.
    pub retrieve: RetrieveProfile,
    /// Web-search stage.
    pub search: SearchProfile,
    /// Answer length range (tokens) — holds a generate slot past TTFT.
    pub answer_tokens: (usize, usize),
    /// Estimator smoothing window.
    pub window: SimDuration,
    /// Master seed.
    pub seed: u64,
}

impl Default for RagConfig {
    fn default() -> RagConfig {
        RagConfig {
            policy: RagPolicy::Proactive,
            slo: SimDuration::from_secs(5),
            rewrite: LlmProfile::rewrite_default(),
            generate: LlmProfile::generate_default(),
            retrieve: RetrieveProfile::default_profile(),
            search: SearchProfile::default_profile(),
            answer_tokens: (50, 110),
            window: SimDuration::from_secs(5),
            seed: 42,
        }
    }
}

/// Per-request progress.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Status {
    Pending,
    Dropped,
    Done,
}

struct Req {
    deadline: SimTime,
    query_len: usize,
    rewrite_out_len: usize,
    context_len: usize,
    answer_len: usize,
    status: Status,
    retrieve_done: bool,
    search_done: bool,
    rewrite_latency: Option<SimDuration>,
    retrieve_latency: Option<SimDuration>,
    search_started: Option<SimTime>,
    ttft: Option<SimTime>,
    drop_stage: Option<usize>,
}

#[derive(Clone, Copy, Debug)]
enum Ev {
    Arrive(u64),
    RewriteDone(u64),
    RetrieveBatchDone,
    SearchDone(u64),
    GenPrefillDone(u64),
    GenDecodeDone(u64),
}

/// One run's outcome.
#[derive(Clone, Debug)]
pub struct RagResult {
    /// Total queries offered.
    pub total: usize,
    /// Queries whose TTFT met the SLO.
    pub goodput: usize,
    /// Queries dropped (or late — counted as dropped, as in §5.1).
    pub dropped: usize,
    /// Drops attributed per stage: rewrite/retrieve/search/generate.
    pub drops_per_stage: [usize; 4],
    /// Rewrite stage latencies (grant→done), ms.
    pub rewrite_ms: Vec<f64>,
    /// Retrieve stage latencies (arrive→done), ms.
    pub retrieve_ms: Vec<f64>,
    /// Search stage latencies (arrive→done), ms.
    pub search_ms: Vec<f64>,
    /// Generate TTFT contribution (merge→first token), ms.
    pub generate_ms: Vec<f64>,
}

impl RagResult {
    /// Drop rate over all queries.
    pub fn drop_rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.dropped as f64 / self.total as f64
        }
    }

    /// Normalized goodput (fraction of offered queries inside SLO).
    pub fn normalized_goodput(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.goodput as f64 / self.total as f64
        }
    }
}

struct RagWorld {
    config: RagConfig,
    rng: DetRng,
    reqs: Vec<Req>,
    // Rewrite LLM.
    rewrite_active: usize,
    rewrite_queue: VecDeque<u64>,
    // Retrieve batch worker.
    retrieve_queue: VecDeque<(u64, SimTime)>,
    retrieve_busy: bool,
    retrieve_batch: Vec<(u64, SimTime)>,
    // Search pool.
    search_active: usize,
    search_queue: VecDeque<(u64, SimTime)>,
    // Generate LLM.
    gen_active: usize,
    gen_queue: VecDeque<(u64, SimTime)>,
    // Estimators (recent averages).
    rewrite_window: LinearWeightedWindow,
    retrieve_window: LinearWeightedWindow,
    search_window: LinearWeightedWindow,
    gen_wait_window: LinearWeightedWindow,
    avg_out_len: LinearWeightedWindow,
    // Output.
    result: RagResult,
}

impl RagWorld {
    fn drop_req(&mut self, id: u64, stage: usize) {
        let req = &mut self.reqs[id as usize];
        if req.status == Status::Pending {
            req.status = Status::Dropped;
            req.drop_stage = Some(stage);
            self.result.dropped += 1;
            self.result.drops_per_stage[stage] += 1;
        }
    }

    fn estimate_rewrite(&mut self, id: u64, now: SimTime) -> SimDuration {
        let req = &self.reqs[id as usize];
        match self.config.policy {
            RagPolicy::Predict => self
                .config
                .rewrite
                .generation(req.query_len, req.rewrite_out_len),
            _ => {
                // Recent average; fall back to the profile with the
                // average output length before any completion exists.
                match self.rewrite_window.mean(now) {
                    Some(ms) => SimDuration::from_millis_f64(ms),
                    None => {
                        let out = self.avg_out_len.mean(now).unwrap_or(45.0) as usize;
                        self.config.rewrite.generation(req.query_len, out)
                    }
                }
            }
        }
    }

    fn estimate_retrieve(&mut self, now: SimTime) -> SimDuration {
        // "Estimated as in PARD": queued work over batch throughput plus
        // one batch execution.
        let batch = self.config.retrieve.max_batch;
        let queued = self.retrieve_queue.len();
        let batches_ahead = queued / batch + usize::from(self.retrieve_busy);
        let d = self.config.retrieve.latency(batch);
        let base = d * (batches_ahead as u64 + 1);
        match self.retrieve_window.mean(now) {
            Some(ms) => std::cmp::max(base, SimDuration::from_millis_f64(ms)),
            None => base,
        }
    }

    fn estimate_search(&mut self, now: SimTime) -> SimDuration {
        match self.search_window.mean(now) {
            Some(ms) => SimDuration::from_millis_f64(ms),
            None => SimDuration::from_millis_f64(self.config.search.median_ms()),
        }
    }

    fn estimate_generate(&mut self, id: u64, now: SimTime) -> SimDuration {
        let req = &self.reqs[id as usize];
        let out = match self.config.policy {
            RagPolicy::Predict => req.rewrite_out_len,
            _ => self.avg_out_len.mean(now).unwrap_or(45.0) as usize,
        };
        let input = req.query_len + out + req.context_len;
        let wait = self
            .gen_wait_window
            .mean(now)
            .map(SimDuration::from_millis_f64)
            .unwrap_or(SimDuration::ZERO);
        wait + self.config.generate.prefill(input)
    }

    /// The drop decision at a stage boundary. `remaining` is the
    /// policy's projection of the remaining path.
    fn should_drop(&self, id: u64, now: SimTime, remaining: SimDuration) -> bool {
        let req = &self.reqs[id as usize];
        match self.config.policy {
            RagPolicy::Reactive => now > req.deadline,
            RagPolicy::Proactive | RagPolicy::Predict => {
                now > req.deadline || now + remaining > req.deadline
            }
        }
    }

    // ------ rewrite ------

    fn rewrite_try_grant(&mut self, now: SimTime, queue: &mut EventQueue<Ev>) {
        while self.rewrite_active < self.config.rewrite.max_slots {
            let Some(id) = self.rewrite_queue.pop_front() else {
                return;
            };
            if self.reqs[id as usize].status != Status::Pending {
                continue;
            }
            let rewrite_est = self.estimate_rewrite(id, now);
            let branch = std::cmp::max(self.estimate_retrieve(now), self.estimate_search(now));
            let generate = self.estimate_generate(id, now);
            if self.should_drop(id, now, rewrite_est + branch + generate) {
                self.drop_req(id, 0);
                continue;
            }
            let req = &self.reqs[id as usize];
            let duration = self
                .config
                .rewrite
                .generation(req.query_len, req.rewrite_out_len);
            self.rewrite_active += 1;
            self.reqs[id as usize].rewrite_latency = Some(duration);
            queue.push(now + duration, Ev::RewriteDone(id));
        }
    }

    // ------ retrieve ------

    fn retrieve_try_start(&mut self, now: SimTime, queue: &mut EventQueue<Ev>) {
        if self.retrieve_busy || self.retrieve_queue.is_empty() {
            return;
        }
        let mut batch = Vec::new();
        while batch.len() < self.config.retrieve.max_batch {
            let Some((id, arrived)) = self.retrieve_queue.pop_front() else {
                break;
            };
            if self.reqs[id as usize].status != Status::Pending {
                continue;
            }
            let remaining = self.config.retrieve.latency(self.config.retrieve.max_batch)
                + self.estimate_generate(id, now);
            if self.should_drop(id, now, remaining) {
                self.drop_req(id, 1);
                continue;
            }
            batch.push((id, arrived));
        }
        if batch.is_empty() {
            return;
        }
        let d = self.config.retrieve.latency(batch.len());
        self.retrieve_batch = batch;
        self.retrieve_busy = true;
        queue.push(now + d, Ev::RetrieveBatchDone);
    }

    // ------ search ------

    fn search_try_start(&mut self, now: SimTime, queue: &mut EventQueue<Ev>) {
        while self.search_active < self.config.search.concurrency {
            let Some((id, _arrived)) = self.search_queue.pop_front() else {
                return;
            };
            if self.reqs[id as usize].status != Status::Pending {
                continue;
            }
            let remaining = self.estimate_search(now) + self.estimate_generate(id, now);
            if self.should_drop(id, now, remaining) {
                self.drop_req(id, 2);
                continue;
            }
            let d = self.config.search.sample(&mut self.rng);
            self.search_active += 1;
            self.reqs[id as usize].search_started = Some(now);
            queue.push(now + d, Ev::SearchDone(id));
        }
    }

    // ------ generate ------

    fn gen_try_grant(&mut self, now: SimTime, queue: &mut EventQueue<Ev>) {
        while self.gen_active < self.config.generate.max_slots {
            let Some((id, arrived)) = self.gen_queue.pop_front() else {
                return;
            };
            if self.reqs[id as usize].status != Status::Pending {
                continue;
            }
            let req = &self.reqs[id as usize];
            let input = req.query_len + req.rewrite_out_len + req.context_len;
            let prefill = self.config.generate.prefill(input);
            if self.should_drop(id, now, prefill) {
                self.drop_req(id, 3);
                continue;
            }
            self.gen_wait_window
                .push(now, now.saturating_since(arrived).as_millis_f64());
            self.gen_active += 1;
            queue.push(now + prefill, Ev::GenPrefillDone(id));
        }
    }

    fn maybe_merge(&mut self, id: u64, now: SimTime, queue: &mut EventQueue<Ev>) {
        let req = &self.reqs[id as usize];
        if req.status == Status::Pending && req.retrieve_done && req.search_done {
            self.gen_queue.push_back((id, now));
            self.gen_try_grant(now, queue);
        }
    }
}

impl World for RagWorld {
    type Event = Ev;

    fn handle(&mut self, now: SimTime, event: Ev, queue: &mut EventQueue<Ev>) {
        match event {
            Ev::Arrive(id) => {
                self.rewrite_queue.push_back(id);
                self.rewrite_try_grant(now, queue);
            }
            Ev::RewriteDone(id) => {
                self.rewrite_active -= 1;
                let latency = self.reqs[id as usize].rewrite_latency.expect("rewrite ran");
                self.rewrite_window.push(now, latency.as_millis_f64());
                let out = self.reqs[id as usize].rewrite_out_len as f64;
                self.avg_out_len.push(now, out);
                self.result.rewrite_ms.push(latency.as_millis_f64());
                if self.reqs[id as usize].status == Status::Pending {
                    self.retrieve_queue.push_back((id, now));
                    self.search_queue.push_back((id, now));
                    self.retrieve_try_start(now, queue);
                    self.search_try_start(now, queue);
                }
                self.rewrite_try_grant(now, queue);
            }
            Ev::RetrieveBatchDone => {
                self.retrieve_busy = false;
                let batch = std::mem::take(&mut self.retrieve_batch);
                for (id, arrived) in batch {
                    let latency = now.saturating_since(arrived);
                    self.retrieve_window.push(now, latency.as_millis_f64());
                    self.result.retrieve_ms.push(latency.as_millis_f64());
                    self.reqs[id as usize].retrieve_latency = Some(latency);
                    self.reqs[id as usize].retrieve_done = true;
                    self.maybe_merge(id, now, queue);
                }
                self.retrieve_try_start(now, queue);
            }
            Ev::SearchDone(id) => {
                self.search_active -= 1;
                let started = self.reqs[id as usize].search_started.expect("search ran");
                let latency_ms = now.saturating_since(started).as_millis_f64();
                self.search_window.push(now, latency_ms);
                self.result.search_ms.push(latency_ms);
                self.reqs[id as usize].search_done = true;
                self.maybe_merge(id, now, queue);
                self.search_try_start(now, queue);
            }
            Ev::GenPrefillDone(id) => {
                let req = &mut self.reqs[id as usize];
                if req.status == Status::Pending {
                    req.ttft = Some(now);
                    req.status = Status::Done;
                    if now <= req.deadline {
                        self.result.goodput += 1;
                    } else {
                        self.result.dropped += 1;
                        self.result.drops_per_stage[3] += 1;
                    }
                }
                let answer = self.rng.range_u64(
                    self.config.answer_tokens.0 as u64,
                    self.config.answer_tokens.1 as u64 + 1,
                ) as usize;
                self.reqs[id as usize].answer_len = answer;
                let decode = SimDuration::from_millis_f64(
                    self.config.generate.decode_per_token_ms * answer as f64,
                );
                queue.push(now + decode, Ev::GenDecodeDone(id));
            }
            Ev::GenDecodeDone(_id) => {
                self.gen_active -= 1;
                self.gen_try_grant(now, queue);
            }
        }
    }
}

/// Runs the RAG workflow over `workload` and returns the outcome.
pub fn run_rag(workload: &RagWorkload, config: RagConfig) -> RagResult {
    let slo = config.slo;
    let reqs: Vec<Req> = workload
        .queries
        .iter()
        .map(|q| Req {
            deadline: q.sent + slo,
            query_len: q.query_len,
            rewrite_out_len: q.rewrite_out_len,
            context_len: q.context_len,
            answer_len: 0,
            status: Status::Pending,
            retrieve_done: false,
            search_done: false,
            rewrite_latency: None,
            retrieve_latency: None,
            search_started: None,
            ttft: None,
            drop_stage: None,
        })
        .collect();
    let window = config.window;
    let world = RagWorld {
        rng: DetRng::new(config.seed ^ 0x5247),
        reqs,
        rewrite_active: 0,
        rewrite_queue: VecDeque::new(),
        retrieve_queue: VecDeque::new(),
        retrieve_busy: false,
        retrieve_batch: Vec::new(),
        search_active: 0,
        search_queue: VecDeque::new(),
        gen_active: 0,
        gen_queue: VecDeque::new(),
        rewrite_window: LinearWeightedWindow::new(window),
        retrieve_window: LinearWeightedWindow::new(window),
        search_window: LinearWeightedWindow::new(window),
        gen_wait_window: LinearWeightedWindow::new(window),
        avg_out_len: LinearWeightedWindow::new(window),
        result: RagResult {
            total: workload.queries.len(),
            goodput: 0,
            dropped: 0,
            drops_per_stage: [0; 4],
            rewrite_ms: Vec::new(),
            retrieve_ms: Vec::new(),
            search_ms: Vec::new(),
            generate_ms: Vec::new(),
        },
        config,
    };
    let mut sim = Simulation::new(world);
    for q in &workload.queries {
        sim.schedule(q.sent, Ev::Arrive(q.id));
    }
    sim.run_to_completion();
    let mut world = sim.into_world();
    // Generate-stage contribution (prefill) per request that reached a
    // first token; the queue wait is already visible in its TTFT.
    for req in &world.reqs {
        if req.ttft.is_some() {
            let input = req.query_len + req.rewrite_out_len + req.context_len;
            world
                .result
                .generate_ms
                .push(world.config.generate.prefill(input).as_millis_f64());
        }
    }
    world.result
}

#[cfg(test)]
mod tests {
    use super::*;
    use pard_workload::azure;

    fn workload(n: usize) -> RagWorkload {
        RagWorkload::generate(n, &azure(240, 1), 7)
    }

    fn run(policy: RagPolicy, n: usize) -> RagResult {
        run_rag(
            &workload(n),
            RagConfig {
                policy,
                ..RagConfig::default()
            },
        )
    }

    #[test]
    fn all_requests_are_accounted() {
        for policy in RagPolicy::ALL {
            let r = run(policy, 3_000);
            assert_eq!(
                r.goodput + r.dropped,
                r.total,
                "{}: goodput {} + dropped {} != {}",
                policy.name(),
                r.goodput,
                r.dropped,
                r.total
            );
        }
    }

    #[test]
    fn policy_ordering_matches_paper() {
        // Fig. 15a: predict (11%) < proactive (17%) < reactive (39%).
        let predict = run(RagPolicy::Predict, 6_000);
        let proactive = run(RagPolicy::Proactive, 6_000);
        let reactive = run(RagPolicy::Reactive, 6_000);
        assert!(
            predict.drop_rate() <= proactive.drop_rate() + 0.01,
            "predict {} vs proactive {}",
            predict.drop_rate(),
            proactive.drop_rate()
        );
        assert!(
            proactive.drop_rate() < reactive.drop_rate(),
            "proactive {} vs reactive {}",
            proactive.drop_rate(),
            reactive.drop_rate()
        );
        assert!(
            proactive.normalized_goodput() > reactive.normalized_goodput(),
            "goodput should improve"
        );
    }

    #[test]
    fn deterministic_runs() {
        let a = run(RagPolicy::Proactive, 1_000);
        let b = run(RagPolicy::Proactive, 1_000);
        assert_eq!(a.goodput, b.goodput);
        assert_eq!(a.dropped, b.dropped);
    }

    #[test]
    fn stage_latencies_have_expected_shapes() {
        let r = run(RagPolicy::Proactive, 4_000);
        // Rewrite latency varies with output length (§7).
        let rw = pard_metrics::Cdf::from_samples(&r.rewrite_ms);
        assert!(rw.quantile(0.9) > 1.5 * rw.quantile(0.1), "rewrite spread");
        // Retrieve is fast and tight.
        let rt = pard_metrics::Cdf::from_samples(&r.retrieve_ms);
        assert!(
            rt.quantile(0.5) < 200.0,
            "retrieve median {}",
            rt.quantile(0.5)
        );
    }
}
