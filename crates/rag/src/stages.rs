//! Latency models of the four RAG stages (Table 2 substitutes).

use pard_sim::{DetRng, SimDuration};

/// A continuous-batching LLM serving stage (vLLM-style).
///
/// A request occupies one of `max_slots` decode slots; with a slot it
/// runs uninterrupted: `prefill(input_len)` then one decode step per
/// output token. Continuous batching means there is *no* batch wait —
/// a freed slot is granted immediately (§7, Fig. 15b discussion).
#[derive(Clone, Debug)]
pub struct LlmProfile {
    /// Concurrent decode slots.
    pub max_slots: usize,
    /// Prefill cost: fixed part, milliseconds.
    pub prefill_base_ms: f64,
    /// Prefill cost per input token, milliseconds.
    pub prefill_per_token_ms: f64,
    /// Decode step per output token, milliseconds.
    pub decode_per_token_ms: f64,
}

impl LlmProfile {
    /// Prefill duration for `input_len` tokens.
    pub fn prefill(&self, input_len: usize) -> SimDuration {
        SimDuration::from_millis_f64(
            self.prefill_base_ms + self.prefill_per_token_ms * input_len as f64,
        )
    }

    /// Full generation duration: prefill plus `output_len` decode steps.
    pub fn generation(&self, input_len: usize, output_len: usize) -> SimDuration {
        self.prefill(input_len)
            + SimDuration::from_millis_f64(self.decode_per_token_ms * output_len as f64)
    }

    /// Llama-3-8B-class rewrite stage on an A100 (Table 2).
    pub fn rewrite_default() -> LlmProfile {
        LlmProfile {
            max_slots: 36,
            prefill_base_ms: 25.0,
            prefill_per_token_ms: 0.35,
            decode_per_token_ms: 18.0,
        }
    }

    /// Llama-3-8B-class generate stage; TTFT ends at prefill completion.
    pub fn generate_default() -> LlmProfile {
        LlmProfile {
            max_slots: 48,
            prefill_base_ms: 30.0,
            prefill_per_token_ms: 0.40,
            decode_per_token_ms: 18.0,
        }
    }
}

/// Batched vector-database retrieval (FAISS over 483 k items, Table 2).
#[derive(Clone, Copy, Debug)]
pub struct RetrieveProfile {
    /// Maximum batch size.
    pub max_batch: usize,
    /// Fixed per-batch cost, milliseconds.
    pub base_ms: f64,
    /// Per-query cost, milliseconds.
    pub per_query_ms: f64,
}

impl RetrieveProfile {
    /// Batch execution duration.
    pub fn latency(&self, batch: usize) -> SimDuration {
        SimDuration::from_millis_f64(self.base_ms + self.per_query_ms * batch as f64)
    }

    /// Defaults matched to a CPU FAISS index.
    pub fn default_profile() -> RetrieveProfile {
        RetrieveProfile {
            max_batch: 32,
            base_ms: 8.0,
            per_query_ms: 1.2,
        }
    }
}

/// Web search with long-tail network latency (Tavily API, Table 2).
#[derive(Clone, Copy, Debug)]
pub struct SearchProfile {
    /// Concurrent in-flight calls (the paper uses multithreading).
    pub concurrency: usize,
    /// Log-normal µ of the latency in ln-milliseconds.
    pub mu_ln_ms: f64,
    /// Log-normal σ.
    pub sigma: f64,
    /// Hard ceiling (client-side timeout), milliseconds.
    pub cap_ms: f64,
}

impl SearchProfile {
    /// Draws one call latency.
    pub fn sample(&self, rng: &mut DetRng) -> SimDuration {
        SimDuration::from_millis_f64(
            self.mu_ln_ms.exp() * 0.0 + {
                // ln-normal draw with cap.
                let ms = rng.lognormal(self.mu_ln_ms, self.sigma);
                ms.min(self.cap_ms)
            },
        )
    }

    /// Median latency in milliseconds.
    pub fn median_ms(&self) -> f64 {
        self.mu_ln_ms.exp()
    }

    /// Defaults: ~400 ms median with a tail into seconds (Fig. 15b).
    pub fn default_profile() -> SearchProfile {
        SearchProfile {
            concurrency: 64,
            mu_ln_ms: 400.0f64.ln(),
            sigma: 0.75,
            cap_ms: 8_000.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn llm_prefill_scales_with_input() {
        let llm = LlmProfile::rewrite_default();
        assert!(llm.prefill(100) > llm.prefill(10));
        let gen = llm.generation(50, 40);
        let expect = llm.prefill(50) + SimDuration::from_millis_f64(18.0 * 40.0);
        assert_eq!(gen, expect);
    }

    #[test]
    fn retrieve_latency_is_affine() {
        let r = RetrieveProfile::default_profile();
        assert_eq!(r.latency(0), SimDuration::from_millis_f64(8.0));
        assert_eq!(r.latency(10), SimDuration::from_millis_f64(20.0));
    }

    #[test]
    fn search_has_long_tail_but_caps() {
        let s = SearchProfile::default_profile();
        let mut rng = DetRng::new(3);
        let samples: Vec<f64> = (0..20_000)
            .map(|_| s.sample(&mut rng).as_millis_f64())
            .collect();
        let mut sorted = samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[sorted.len() / 2];
        let p99 = sorted[(sorted.len() as f64 * 0.99) as usize];
        assert!(
            (median - s.median_ms()).abs() / s.median_ms() < 0.1,
            "median {median}"
        );
        assert!(p99 > 2.0 * median, "p99 {p99} vs median {median}");
        assert!(sorted.last().unwrap() <= &s.cap_ms);
    }
}
