//! RAG workflow case study (§7, Table 2, Fig. 15).
//!
//! PARD's core insight — proactively dropping requests that cannot meet
//! their latency objective raises goodput for everyone else — carries to
//! multi-stage LLM workflows. This crate simulates the paper's
//! four-stage retrieval-augmented-generation pipeline:
//!
//! ```text
//!            ┌────────── retrieve (FAISS, batched) ──────────┐
//! rewrite ───┤                                               ├── generate
//!  (LLM,     └────────── search (web API, long tail) ────────┘   (LLM,
//!  continuous batching)                                          prefill = TTFT)
//! ```
//!
//! with a 5 s time-to-first-token SLO, and compares three dropping
//! policies (Fig. 15a):
//!
//! * [`RagPolicy::Reactive`] — drop only after the TTFT SLO has already
//!   been violated.
//! * [`RagPolicy::Proactive`] — PARD's idea adapted: estimate the
//!   remaining path (rewrite/search by recent averages, retrieve like a
//!   batched module, generate prefill from its profiled per-token cost
//!   and the input length) and drop when the projection misses.
//! * [`RagPolicy::Predict`] — the oracle upper bound: the rewrite's
//!   output length (and hence its decode time) is known exactly.
//!
//! Domain differences from DNN pipelines, reproduced here (§7): rewrite
//! latency varies with output length, continuous batching removes batch
//! wait for the LLM stages, and search has network long-tail latency.

pub mod sim;
pub mod stages;
pub mod workload;

pub use sim::{run_rag, RagConfig, RagPolicy, RagResult};
pub use stages::{LlmProfile, RetrieveProfile, SearchProfile};
pub use workload::{RagQuery, RagWorkload};
