//! HotpotQA-like query workload for the RAG case study.

use pard_sim::{DetRng, SimTime};
use pard_workload::RateTrace;

/// One query.
#[derive(Clone, Copy, Debug)]
pub struct RagQuery {
    /// Unique id.
    pub id: u64,
    /// Send time.
    pub sent: SimTime,
    /// Query length in tokens.
    pub query_len: usize,
    /// The rewrite's eventual output length in tokens (ground truth;
    /// the `Predict` policy may read it, `Proactive` may not).
    pub rewrite_out_len: usize,
    /// Retrieved-context length added before generation, tokens.
    pub context_len: usize,
}

/// A full workload: queries with send times.
#[derive(Clone, Debug)]
pub struct RagWorkload {
    /// Queries sorted by send time.
    pub queries: Vec<RagQuery>,
}

impl RagWorkload {
    /// Generates `n` queries whose arrival rate follows `trace`
    /// (rescaled to fit all `n` within the trace duration).
    ///
    /// Lengths follow HotpotQA-ish shapes: short multi-hop questions
    /// (15–45 tokens), log-normal rewrite outputs (median ≈ 45 tokens),
    /// and retrieval contexts of several hundred tokens.
    pub fn generate(n: usize, trace: &RateTrace, seed: u64) -> RagWorkload {
        let mut rng = DetRng::new(seed ^ 0x5261_4721);
        let scaled = trace.scaled_to_mean(n as f64 / trace.duration().as_secs_f64().max(1.0));
        let mut times = pard_workload::poisson_arrivals(&scaled, &mut rng);
        times.truncate(n);
        let queries = times
            .into_iter()
            .enumerate()
            .map(|(i, sent)| RagQuery {
                id: i as u64,
                sent,
                query_len: rng.range_u64(15, 46) as usize,
                rewrite_out_len: (rng.lognormal(42.0f64.ln(), 0.75).round() as usize).clamp(8, 320),
                context_len: rng.range_u64(420, 900) as usize,
            })
            .collect();
        RagWorkload { queries }
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Whether the workload is empty.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pard_workload::azure;

    #[test]
    fn generates_requested_count() {
        let trace = azure(120, 1);
        let w = RagWorkload::generate(2_000, &trace, 7);
        assert!(w.len() >= 1_900, "got {}", w.len());
        for q in &w.queries {
            assert!((15..46).contains(&q.query_len));
            assert!((8..=320).contains(&q.rewrite_out_len));
            assert!((420..900).contains(&q.context_len));
        }
    }

    #[test]
    fn arrivals_are_sorted_and_deterministic() {
        let trace = azure(60, 2);
        let a = RagWorkload::generate(500, &trace, 9);
        let b = RagWorkload::generate(500, &trace, 9);
        for (x, y) in a.queries.iter().zip(&b.queries) {
            assert_eq!(x.sent, y.sent);
            assert_eq!(x.rewrite_out_len, y.rewrite_out_len);
        }
        for w in a.queries.windows(2) {
            assert!(w[0].sent <= w[1].sent);
        }
    }

    #[test]
    fn rewrite_lengths_are_skewed() {
        let trace = azure(60, 3);
        let w = RagWorkload::generate(5_000, &trace, 11);
        let lens: Vec<f64> = w.queries.iter().map(|q| q.rewrite_out_len as f64).collect();
        let mean = lens.iter().sum::<f64>() / lens.len() as f64;
        let mut sorted = lens.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[sorted.len() / 2];
        assert!(
            mean > median,
            "log-normal skew: mean {mean} median {median}"
        );
    }
}
