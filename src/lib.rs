//! # PARD — proactive request dropping for inference pipelines
//!
//! A from-scratch Rust reproduction of *"PARD: Enhancing Goodput for
//! Inference Pipeline via ProActive Request Dropping"* (EuroSys '26).
//!
//! Multi-model inference pipelines serve requests under end-to-end
//! latency SLOs; a request that finishes late is worthless, and under
//! bursts some requests *must* be dropped so the rest can make it. PARD
//! drops **proactively** — estimating each request's end-to-end latency
//! from bi-directional runtime information before it enters a batch —
//! and chooses **which** requests to drop with an adaptive double-ended
//! priority queue (High-Budget-First under overload, Low-Budget-First
//! otherwise, with a hysteresis band against flapping).
//!
//! This facade crate re-exports the whole workspace:
//!
//! | crate | contents |
//! |---|---|
//! | [`sim`] | deterministic discrete-event engine, virtual time, RNG |
//! | [`metrics`] | request lifecycle records, goodput/drop/invalid rates |
//! | [`profile`] | model zoo, batch-latency profiles, offline profiler |
//! | [`workload`] | wiki/tweet/azure trace synthesis, arrival sampling |
//! | [`pipeline`] | pipeline specs, JSON configuration, DAG utilities |
//! | [`core`] | **the contribution**: DEPQ, State Planner, Request Broker, adaptive priority |
//! | [`policies`] | Nexus, Clipper++, Naive, overload control, ablations |
//! | [`cluster`] | discrete-event cluster serving engine |
//! | [`runtime`] | live multi-threaded serving engine |
//! | [`engine_api`] | unified `EngineHandle` front door over simulator + live runtime |
//! | [`gateway`] | TCP serving front-end with edge admission, typed client + load generator |
//! | [`harness`] | scenario harness: golden (sim) + envelope (live) e2e suites over real sockets |
//! | [`sweep`] | parallel scenario-sweep engine + goodput/latency/cost Pareto explorer |
//! | [`rag`] | §7 RAG workflow case study |
//!
//! # Examples
//!
//! Run a pipeline under PARD and a reactive baseline and compare:
//!
//! ```
//! use pard::prelude::*;
//!
//! let spec = AppKind::Tm.pipeline();
//! let trace = pard::workload::constant(80.0, 10);
//! let exec = vec![40.0; spec.modules.len()];
//! let config = ClusterConfig::default()
//!     .with_pard(PardConfig::default().with_mc_draws(500));
//! let factory = make_factory(SystemKind::Pard, &spec, &exec, OcConfig::default());
//! let result = pard::cluster::run(&spec, &trace, factory, config)
//!     .expect("builtin models are in the zoo");
//! assert!(result.log.goodput_count() > 0);
//! ```
//!
//! Build a serving engine — simulated or live — behind the unified API:
//!
//! ```
//! use pard::prelude::*;
//!
//! let engine = EngineBuilder::for_app(AppKind::Tm)
//!     .build(Backend::Sim(ClusterConfig::default()))
//!     .expect("builtin models are in the zoo");
//! assert_eq!(engine.spec().name, "tm");
//! ```

pub use pard_cluster as cluster;
pub use pard_core as core;
pub use pard_engine_api as engine_api;
pub use pard_gateway as gateway;
pub use pard_harness as harness;
pub use pard_metrics as metrics;
pub use pard_obs as obs;
pub use pard_pipeline as pipeline;
pub use pard_policies as policies;
pub use pard_profile as profile;
pub use pard_rag as rag;
pub use pard_runtime as runtime;
pub use pard_sim as sim;
pub use pard_sweep as sweep;
pub use pard_workload as workload;

/// The most commonly used items in one import.
pub mod prelude {
    pub use pard_cluster::{
        run, ClusterConfig, FaultSpec, RunResult, SimServer, UnknownModelError,
    };
    pub use pard_core::{
        Depq, OrderMode, PardConfig, PardPolicy, PardPolicyConfig, PriorityMode, ReqMeta, RuleMode,
        SubMode, WorkerPolicy,
    };
    pub use pard_engine_api::{Backend, EngineBuilder, EngineHandle, SubmitSpec};
    pub use pard_gateway::{CallSpec, Client, Gateway, GatewayConfig, LoadMode, LoadgenConfig};
    pub use pard_metrics::{DropReason, Outcome, RequestLog, Table};
    pub use pard_obs::{EngineFrame, FlightRecorder, ObsEvent, ObsKind};
    pub use pard_pipeline::{AppKind, ModuleSpec, PipelineSpec};
    pub use pard_policies::{make_factory, OcConfig, SystemKind};
    pub use pard_profile::{plan_batches, ModelProfile};
    pub use pard_rag::{run_rag, RagConfig, RagPolicy, RagWorkload};
    pub use pard_runtime::{LiveCluster, LiveConfig, SleepBackend};
    pub use pard_sim::{DetRng, SimDuration, SimTime};
    pub use pard_sweep::{pareto_front_of, run_sweep, CellRecord, SweepSpec};
    pub use pard_workload::{RateTrace, TraceKind};
}
