//! Traffic monitoring under a burst: PARD vs the reactive baselines.
//!
//! Replays the paper's motivating scenario (§3): a traffic-monitoring
//! pipeline hit by a Twitter-trace burst. Prints the goodput/drop/invalid
//! comparison and *where* in the pipeline each system drops — the
//! drop-too-late signature of reactive policies.
//!
//! ```sh
//! cargo run --release --example traffic_monitoring
//! ```

use pard::prelude::*;

fn main() {
    let spec = AppKind::Tm.pipeline();
    let profiles: Vec<ModelProfile> = spec
        .modules
        .iter()
        .map(|m| pard::profile::zoo::by_name(&m.name).expect("zoo model"))
        .collect();
    let plan = plan_batches(&profiles, spec.slo, 2.0);
    let exec: Vec<f64> = profiles
        .iter()
        .zip(&plan.batch_sizes)
        .map(|(p, &b)| p.latency_ms(b))
        .collect();

    // A steady stream with a 2.5x flash crowd in the middle.
    let trace = pard::workload::constant(220.0, 180).with_burst(60, 40, 2.5);
    println!(
        "workload: 220 req/s with a 2.5x burst at t=60s for 40s (SLO {})",
        spec.slo
    );
    println!();

    let mut table = Table::new(
        "traffic monitoring under burst",
        &[
            "system",
            "goodput %",
            "drop rate",
            "invalid rate",
            "drops M1/M2/M3",
        ],
    );
    for system in SystemKind::BASELINES {
        let factory = make_factory(system, &spec, &exec, OcConfig::default());
        let result = pard::cluster::run(&spec, &trace, factory, ClusterConfig::default())
            .expect("builtin models are in the zoo");
        let log = &result.log;
        let dist = log.drop_distribution(spec.len());
        table.row(&[
            system.name().to_string(),
            format!(
                "{:.1}%",
                100.0 * log.goodput_count() as f64 / log.len() as f64
            ),
            format!("{:.2}%", 100.0 * log.drop_rate()),
            format!("{:.2}%", 100.0 * log.invalid_rate()),
            format!(
                "{:.0}%/{:.0}%/{:.0}%",
                dist[0] * 100.0,
                dist[1] * 100.0,
                dist[2] * 100.0
            ),
        ]);
    }
    print!("{}", table.render());
    println!();
    println!("expected shape: PARD drops early (M1-heavy) and little; reactive");
    println!("baselines drop more, later, and waste the computation already spent.");
}
