//! Quickstart: serve a 3-module pipeline under PARD and print goodput.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use pard::prelude::*;

fn main() {
    // 1. Pick an application pipeline: traffic monitoring (tm) chains
    //    object detection → face recognition → text recognition with a
    //    400 ms end-to-end SLO (§5.1).
    let spec = AppKind::Tm.pipeline();
    println!(
        "pipeline: {} ({} modules, SLO {})",
        spec.name,
        spec.len(),
        spec.slo
    );

    // 2. Build a workload: a bursty Twitter-like trace, 120 s long.
    let trace = pard::workload::tweet(120, 42);
    println!(
        "trace: mean {:.0} req/s, max {:.0} req/s",
        trace.mean_rate(),
        trace.max_rate()
    );

    // 3. Choose the serving policy. `SystemKind` covers PARD, the
    //    reactive baselines, and every ablation of Table 1.
    let exec = pard_bench_exec(&spec);
    let factory = make_factory(SystemKind::Pard, &spec, &exec, OcConfig::default());

    // 4. Run the cluster simulation (64-worker budget, autoscaling with
    //    cold starts, 1 s state sync — the §5.1 defaults).
    let config = ClusterConfig::default();
    let result =
        pard::cluster::run(&spec, &trace, factory, config).expect("builtin models are in the zoo");

    // 5. Read the paper's three metrics off the request log.
    let log = &result.log;
    println!("requests:     {}", log.len());
    println!(
        "goodput:      {} ({:.1}% of arrivals)",
        log.goodput_count(),
        100.0 * log.goodput_count() as f64 / log.len() as f64
    );
    println!("drop rate:    {:.2}%", 100.0 * log.drop_rate());
    println!("invalid rate: {:.2}%", 100.0 * log.invalid_rate());
    println!("peak workers: {}", result.peak_workers);
}

/// Per-module execution estimates at planned batch sizes (the inputs
/// split-budget baselines need; PARD itself reads them from sync state).
fn pard_bench_exec(spec: &PipelineSpec) -> Vec<f64> {
    let profiles: Vec<ModelProfile> = spec
        .modules
        .iter()
        .map(|m| pard::profile::zoo::by_name(&m.name).expect("zoo model"))
        .collect();
    let plan = plan_batches(&profiles, spec.slo, 2.0);
    profiles
        .iter()
        .zip(&plan.batch_sizes)
        .map(|(p, &b)| p.latency_ms(b))
        .collect()
}
