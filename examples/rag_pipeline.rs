//! Proactive dropping beyond DNN pipelines: the §7 RAG case study.
//!
//! A rewrite → {retrieve ∥ search} → generate workflow with a 5 s
//! time-to-first-token SLO, comparing reactive and proactive dropping
//! plus the output-length-oracle upper bound.
//!
//! ```sh
//! cargo run --release --example rag_pipeline
//! ```

use pard::prelude::*;

fn main() {
    let trace = pard::workload::azure(240, 9);
    let workload = RagWorkload::generate(8_000, &trace, 9);
    println!(
        "RAG workflow: {} HotpotQA-like queries over an azure arrival trace, TTFT SLO 5s",
        workload.len()
    );
    println!();

    let mut table = Table::new(
        "dropping policies on the RAG workflow",
        &["policy", "normalized goodput", "drop rate"],
    );
    for policy in RagPolicy::ALL {
        let result = run_rag(
            &workload,
            RagConfig {
                policy,
                seed: 9,
                ..RagConfig::default()
            },
        );
        table.row(&[
            policy.name().to_string(),
            format!("{:.2}", result.normalized_goodput()),
            format!("{:.1}%", 100.0 * result.drop_rate()),
        ]);
    }
    print!("{}", table.render());
    println!();
    println!("shape (§7): proactive < reactive in drops; the oracle (predict)");
    println!("bounds what output-length prediction could recover.");
}
