//! DAG-style live-video analysis, defined from a JSON config.
//!
//! Demonstrates the §5.1 configuration format — modules with
//! `(name, id, pres, subs)` — for the `da` application, whose person
//! detector fans out to pose and face recognition in parallel before an
//! expression-recognition merge. Shows DAG semantics: both branches
//! execute, the merge waits for both, and a drop in either branch
//! cancels its sibling.
//!
//! ```sh
//! cargo run --release --example dag_video
//! ```

use pard::prelude::*;

const CONFIG: &str = r#"{
  "name": "da",
  "slo_ms": 420,
  "modules": [
    {"name": "person-detection",      "id": 0, "pres": [],     "subs": [1, 2]},
    {"name": "pose-recognition",      "id": 1, "pres": [0],    "subs": [3]},
    {"name": "face-recognition",      "id": 2, "pres": [0],    "subs": [3]},
    {"name": "expression-recognition","id": 3, "pres": [1, 2], "subs": []}
  ]
}"#;

fn main() {
    // Parse and validate the DAG from JSON — same schema as the paper.
    let spec = PipelineSpec::from_json(CONFIG).expect("valid DAG config");
    assert!(!spec.is_chain());
    println!(
        "loaded DAG pipeline {:?}: {} modules, SLO {}",
        spec.name,
        spec.len(),
        spec.slo
    );
    for path in pard::pipeline::graph::paths_to_sink(&spec, spec.source()) {
        let names: Vec<&str> = path
            .iter()
            .map(|&m| spec.modules[m].name.as_str())
            .collect();
        println!("  path: {}", names.join(" -> "));
    }
    println!();

    let profiles: Vec<ModelProfile> = spec
        .modules
        .iter()
        .map(|m| pard::profile::zoo::by_name(&m.name).expect("zoo model"))
        .collect();
    let plan = plan_batches(&profiles, spec.slo, 2.0);
    let exec: Vec<f64> = profiles
        .iter()
        .zip(&plan.batch_sizes)
        .map(|(p, &b)| p.latency_ms(b))
        .collect();

    let trace = pard::workload::azure(180, 7);
    let mut table = Table::new(
        "DAG live-video analysis (da) on the azure trace",
        &["system", "goodput %", "drop rate", "invalid rate"],
    );
    for system in [SystemKind::Pard, SystemKind::Nexus, SystemKind::ClipperPlus] {
        let factory = make_factory(system, &spec, &exec, OcConfig::default());
        let result = pard::cluster::run(&spec, &trace, factory, ClusterConfig::default())
            .expect("builtin models are in the zoo");
        let log = &result.log;
        table.row(&[
            system.name().to_string(),
            format!(
                "{:.1}%",
                100.0 * log.goodput_count() as f64 / log.len() as f64
            ),
            format!("{:.2}%", 100.0 * log.drop_rate()),
            format!("{:.2}%", 100.0 * log.invalid_rate()),
        ]);
    }
    print!("{}", table.render());
    println!();
    println!("note (§5.2): a drop in one branch invalidates the sibling's work,");
    println!("so DAG invalid rates run above the equivalent chain's.");
}
