//! Sweep a policy × rate × worker grid and print its Pareto frontier.
//!
//! ```text
//! cargo run --release --example sweep_pareto
//! ```
//!
//! Every cell replays the same deterministic schedule through the
//! harness's socketless engine path, so re-running this example
//! produces byte-identical records at any thread count.

use pard::harness::TraceSpec;
use pard::prelude::*;
use pard::sweep::pareto_front_of;

fn main() {
    // Traffic-monitoring pipeline: sweep PARD against the naive
    // baseline, a lean and a beefed-up worker allocation, and an
    // in-capacity vs over-capacity arrival rate — 2 × 2 × 2 = 8 cells.
    let mut spec = SweepSpec::new(
        "demo",
        AppKind::Tm,
        TraceSpec::Constant {
            rate: 100.0,
            len_s: 10,
        },
    );
    spec.policies = vec![SystemKind::Pard, SystemKind::Naive];
    spec.workers = vec![vec![1, 1, 1], vec![2, 2, 2]];
    spec.traces = vec![
        TraceSpec::Constant {
            rate: 100.0,
            len_s: 10,
        },
        TraceSpec::Constant {
            rate: 300.0,
            len_s: 10,
        },
    ];
    spec.drain_s = 20;
    spec.mc_draws = 100;

    let records = run_sweep(&spec, 2, |record| {
        println!(
            "cell {:>2}  {:<6} workers {:?} {:<16} goodput {:.4}  p99 {:>7.1} ms  cost {:>4.0} ws",
            record.cell,
            record.policy,
            record.workers,
            record.trace,
            record.goodput,
            record.latency_p99_us / 1_000.0,
            record.cost_worker_s,
        );
    });

    let front = pareto_front_of(&records);
    println!(
        "\nPareto frontier ({} of {} cells):",
        front.front.len(),
        records.len()
    );
    for point in &front.front {
        println!(
            "  cell {:>2}  goodput {:.4}  p99 {:>7.1} ms  cost {:>4.0} ws",
            point.cell,
            point.goodput,
            point.latency_us / 1_000.0,
            point.cost
        );
    }
    for d in &front.dominated {
        println!(
            "  cell {:>2} is dominated by frontier cell {}",
            d.cell, d.by
        );
    }
}
