//! The gateway + load-generator pair, in one process: a real TCP
//! gateway on an ephemeral loopback port, PARD admission at the edge,
//! and an open-loop trace replay against it — time-compressed 20× so
//! the whole demo takes ~1 s of wall time.
//!
//! ```sh
//! cargo run --release --example gateway_quickstart
//! ```

use pard::prelude::*;
use pard::workload::constant;

const SCALE: f64 = 20.0;

fn main() {
    let gateway = Gateway::start(
        AppKind::Tm,
        GatewayConfig {
            addr: "127.0.0.1:0".into(),
            metrics_addr: "127.0.0.1:0".into(),
            time_scale: SCALE,
            ..GatewayConfig::default()
        },
    )
    .expect("bind loopback");
    println!(
        "gateway serving tm on {} (metrics http://{}/metrics), {SCALE}x compressed",
        gateway.addr(),
        gateway.metrics_addr()
    );

    // 10 virtual seconds at 150 req/s; 5% of requests carry an
    // infeasible SLO to make edge rejection visible even underloaded.
    let config = LoadgenConfig {
        app: "tm".into(),
        connections: 4,
        mode: LoadMode::Open {
            trace: constant(150.0, 10),
        },
        time_scale: SCALE,
        ..LoadgenConfig::default()
    };
    let report = pard::gateway::loadgen::run(gateway.addr(), &config).expect("loadgen");
    print!("{}", report.render());
    println!("{}", report.to_json("tm", "open", config.connections));

    let snapshot = gateway.counters();
    println!(
        "gateway counters: received {}, admitted {}, edge-rejected {}, ok {}",
        snapshot.received, snapshot.admitted, snapshot.rejected, snapshot.completed_ok
    );
    let log = gateway.shutdown(SimDuration::from_secs(10));
    println!(
        "cluster log: {} admitted requests, {} goodput, {} drops",
        log.len(),
        log.goodput_count(),
        log.drop_count()
    );
}
