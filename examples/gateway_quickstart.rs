//! The gateway + load-generator pair, in one process: a real TCP
//! gateway on an ephemeral loopback port, PARD admission at the edge,
//! and an open-loop trace replay against it — all through the unified
//! engine API, so switching between the live threaded runtime and the
//! deterministic simulator is the one-line `Backend` choice below.
//!
//! ```sh
//! cargo run --release --example gateway_quickstart                 # live backend
//! PARD_BACKEND=sim cargo run --release --example gateway_quickstart  # simulator backend
//! ```

use pard::prelude::*;
use pard::workload::constant;

const SCALE: f64 = 20.0;

fn main() {
    // The one-line backend switch: the identical gateway, client, and
    // report run against either engine.
    let backend = match std::env::var("PARD_BACKEND").as_deref() {
        Ok("sim") => Backend::Sim(
            ClusterConfig::default()
                .with_seed(42)
                .with_fixed_workers(vec![2; 3]),
        ),
        _ => Backend::Live(LiveConfig::compressed(SCALE, 3, 2)),
    };
    let engine = EngineBuilder::for_app(AppKind::Tm)
        .build(backend)
        .expect("builtin models are in the zoo");

    let gateway = Gateway::start(
        engine,
        GatewayConfig {
            addr: "127.0.0.1:0".into(),
            metrics_addr: "127.0.0.1:0".into(),
            ..GatewayConfig::default()
        },
    )
    .expect("bind loopback");
    println!(
        "gateway serving tm on {} (metrics http://{}/metrics)",
        gateway.addr(),
        gateway.metrics_addr()
    );

    // 10 virtual seconds at 150 req/s; 5% of requests carry an
    // infeasible SLO to make edge rejection visible even underloaded.
    // The load generator drives the typed pard_gateway::client::Client.
    let config = LoadgenConfig {
        app: "tm".into(),
        connections: 4,
        mode: LoadMode::Open {
            trace: constant(150.0, 10),
        },
        // Compresses the wall-clock send schedule 20×; the live backend
        // runs its virtual clock at the same scale, the simulator paces
        // its own virtual time from the request stream.
        time_scale: SCALE,
        ..LoadgenConfig::default()
    };
    let report = pard::gateway::loadgen::run(gateway.addr(), &config).expect("loadgen");
    print!("{}", report.render());
    println!("{}", report.to_json("tm", "open", config.connections));

    let snapshot = gateway.counters();
    println!(
        "gateway counters: received {}, admitted {}, edge-rejected {}, ok {}",
        snapshot.received, snapshot.admitted, snapshot.rejected, snapshot.completed_ok
    );
    let log = gateway.shutdown(SimDuration::from_secs(10));
    println!(
        "engine log: {} admitted requests, {} goodput, {} drops",
        log.len(),
        log.goodput_count(),
        log.drop_count()
    );
}
