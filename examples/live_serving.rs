//! Live serving on real threads: the same PARD policy objects the
//! simulator validates, running against a sleep-based inference backend
//! at 20× time compression (~6 s wall time).
//!
//! ```sh
//! cargo run --release --example live_serving
//! ```

use pard::prelude::*;

const SCALE: f64 = 20.0;

fn main() {
    let spec = PipelineSpec::chain(
        "live-demo",
        SimDuration::from_millis(400),
        &["det", "rec", "ocr"],
    );
    let profiles = vec![
        ModelProfile::new("det", 12.0, 6.0, 0.88, 16),
        ModelProfile::new("rec", 5.0, 3.0, 0.90, 16),
        ModelProfile::new("ocr", 8.0, 4.0, 0.90, 16),
    ];

    println!("starting 3-module live cluster (2 workers each, {SCALE}x compressed)...");
    // The unified engine API builds the cluster; `cluster()` exposes
    // the runtime-specific open-loop driver.
    let engine = EngineBuilder::new(spec)
        .with_profiles(profiles)
        .build_live(LiveConfig::compressed(SCALE, 3, 2))
        .expect("valid chain pipeline");
    let cluster = engine.cluster();

    // 2 minutes of virtual time: one minute calm, one minute overloaded.
    println!("phase 1: 60 virtual seconds at 150 req/s (within capacity)...");
    cluster.run_open_loop(150.0, SimDuration::from_secs(60), 1);
    println!("phase 2: 60 virtual seconds at 700 req/s (overload: drops expected)...");
    cluster.run_open_loop(700.0, SimDuration::from_secs(60), 2);

    let log = engine.drain(SimDuration::from_secs(10));
    let calm: Vec<_> = log
        .records()
        .iter()
        .filter(|r| r.sent < SimTime::from_secs(60))
        .collect();
    let hot: Vec<_> = log
        .records()
        .iter()
        .filter(|r| r.sent >= SimTime::from_secs(60))
        .collect();
    let frac = |rs: &[&pard::metrics::RequestRecord]| {
        let good = rs.iter().filter(|r| r.is_goodput()).count();
        100.0 * good as f64 / rs.len().max(1) as f64
    };
    println!();
    println!(
        "phase 1 (calm):     {} requests, {:.1}% goodput",
        calm.len(),
        frac(&calm)
    );
    println!(
        "phase 2 (overload): {} requests, {:.1}% goodput",
        hot.len(),
        frac(&hot)
    );
    println!("total drop rate:    {:.1}%", 100.0 * log.drop_rate());
    println!();
    println!("same WorkerPolicy trait objects as the simulator — no porting step.");
}
